(* Router edge cases: duplicate/spurious updates, withdrawal rate limiting,
   session restart re-advertisement, loop-detected announcements, RIB
   accessors, and the Rfd facade conveniences. *)

open Rfd_bgp
module Sim = Rfd_engine.Sim
module Builders = Rfd_topology.Builders

let p0 = Prefix.v 0

let fast = { Config.default with Config.mrai = 0.; link_delay = 0.01; link_jitter = 0. }

let make ?(config = fast) graph =
  let sim = Sim.create () in
  (sim, Network.create ~config sim graph)

let count_deliveries net =
  let n = ref 0 in
  (Network.hooks net).Hooks.on_deliver <- (fun ~time:_ ~src:_ ~dst:_ _ -> incr n);
  n

let test_duplicate_originate_is_noop () =
  let _, net = make (Builders.line 2) in
  Network.originate net ~node:0 p0;
  Network.run net;
  let n = count_deliveries net in
  Network.originate net ~node:0 p0;
  Network.run net;
  Alcotest.(check int) "no messages for duplicate originate" 0 !n

let test_spurious_withdraw_is_noop () =
  let _, net = make (Builders.line 2) in
  let n = count_deliveries net in
  (* withdrawing a prefix never originated: nothing must happen *)
  Network.withdraw net ~node:0 p0;
  Network.run net;
  Alcotest.(check int) "no messages" 0 !n

let test_duplicate_announcement_no_penalty () =
  (* A damped router that receives the same announcement twice must not
     charge the penalty for the duplicate. We force a duplicate by failing
     and restoring an unrelated link, triggering a full re-advertisement. *)
  let config = Config.with_damping Rfd_damping.Params.cisco fast in
  let _, net = make ~config (Builders.line 3) in
  Network.originate net ~node:0 p0;
  Network.run net;
  Alcotest.(check (float 0.)) "no penalty initially" 0.
    (Router.penalty (Network.router net 1) ~peer:0 p0);
  (* session flap on (1,2) makes 1 re-advertise to 2; 2's entry already
     held the same route, so the withdrawal (session down) counts but the
     identical re-announcement after peer_up counts as re-announcement. *)
  Network.fail_link net 1 2;
  Network.run net;
  Network.restore_link net 1 2;
  Network.run net;
  (* entry at 1 for peer 0 was never touched: still zero *)
  Alcotest.(check (float 0.)) "unrelated entry untouched" 0.
    (Router.penalty (Network.router net 1) ~peer:0 p0);
  Alcotest.(check int) "all reachable" 3 (Network.reachable_count net p0)

let test_withdrawal_rate_limiting () =
  (* With withdrawal rate limiting on, a W-A-W burst inside one MRAI window
     coalesces: the peer sees at most one message of the burst's net
     effect after the flush. *)
  let run limiting =
    let config =
      { fast with Config.mrai = 5.; withdrawal_rate_limiting = limiting }
    in
    let sim, net = make ~config (Builders.line 2) in
    Network.originate net ~node:0 p0;
    Network.run net;
    let n = count_deliveries net in
    let t = Sim.now sim +. 0.5 in
    Network.schedule_withdraw net ~at:t ~node:0 p0;
    Network.schedule_originate net ~at:(t +. 0.1) ~node:0 p0;
    Network.schedule_withdraw net ~at:(t +. 0.2) ~node:0 p0;
    Network.run net;
    (!n, Router.best (Network.router net 1) p0)
  in
  let unlimited, final_route_a = run false in
  let limited, final_route_b = run true in
  Alcotest.(check bool) "rate limiting coalesces withdrawals" true (limited <= unlimited);
  (* both end withdrawn (last event is a W) *)
  Alcotest.(check bool) "final state unreachable (no limiting)" true (final_route_a = None);
  Alcotest.(check bool) "final state unreachable (limiting)" true (final_route_b = None)

let test_session_restart_readvertises () =
  let p1 = Prefix.v 1 in
  let _, net = make (Builders.line 3) in
  Network.originate net ~node:0 p0;
  Network.originate net ~node:0 p1;
  Network.run net;
  Network.fail_link net 0 1;
  Network.run net;
  Alcotest.(check bool) "both lost" true
    (Router.best (Network.router net 2) p0 = None
    && Router.best (Network.router net 2) p1 = None);
  Network.restore_link net 0 1;
  Network.run net;
  Alcotest.(check bool) "both prefixes re-learned" true
    (Router.best (Network.router net 2) p0 <> None
    && Router.best (Network.router net 2) p1 <> None)

let test_loop_detected_announce_treated_as_withdraw () =
  (* Hand-feed router 1 (peered with 0 in a 2-line) an announcement whose
     path contains 1 itself: it must not install it. *)
  let _, net = make (Builders.line 2) in
  let r1 = Network.router net 1 in
  let looped =
    Update.announce (Route.make ~prefix:p0 ~path:(As_path.of_list [ 0; 1; 5 ]))
  in
  Router.receive r1 ~from_peer:0 looped;
  Alcotest.(check bool) "not installed" true (Router.best r1 p0 = None);
  Alcotest.(check bool) "rib-in empty too" true (Router.rib_in_route r1 ~peer:0 p0 = None)

let test_rib_accessors () =
  let _, net = make (Builders.line 3) in
  Network.originate net ~node:0 p0;
  Network.run net;
  let r1 = Network.router net 1 in
  Alcotest.(check (list int)) "peer ids" [ 0; 2 ] (Router.peer_ids r1);
  Alcotest.(check int) "id" 1 (Router.id r1);
  Alcotest.(check bool) "originates" true (Router.originates (Network.router net 0) p0);
  Alcotest.(check bool) "does not originate" false (Router.originates r1 p0);
  Alcotest.(check (option int)) "best peer" (Some 0) (Router.best_peer r1 p0);
  Alcotest.(check (option int)) "origin best peer none" None
    (Router.best_peer (Network.router net 0) p0);
  (match Router.rib_in_route r1 ~peer:0 p0 with
  | Some route -> Alcotest.(check int) "rib-in path" 1 (Route.path_length route)
  | None -> Alcotest.fail "rib-in entry expected");
  Alcotest.(check (option int)) "recompute matches best"
    (Option.map Route.path_length (Router.best r1 p0))
    (Option.map Route.path_length (Router.recompute_best r1 p0))

let test_connect_validation () =
  let sim = Sim.create () in
  let r =
    Router.create ~sim ~id:0 ~policy:Policy.announce_all ~config:fast ~damping:None
      ~rng:(Rfd_engine.Rng.create 1) ~hooks:(Hooks.create ()) ()
  in
  Alcotest.check_raises "self peer" (Invalid_argument "Router.connect: cannot peer with self")
    (fun () -> Router.connect r ~peer:0 ~send:(fun _ -> ()));
  Router.connect r ~peer:1 ~send:(fun _ -> ());
  Alcotest.check_raises "duplicate peer" (Invalid_argument "Router.connect: duplicate peer 1")
    (fun () -> Router.connect r ~peer:1 ~send:(fun _ -> ()))

let test_facade_conveniences () =
  Alcotest.(check bool) "version non-empty" true (String.length Rfd.version > 0);
  let sim, net = Rfd.quick_network (Builders.line 2) in
  Rfd.Network.originate net ~node:0 p0;
  Rfd.Network.run net;
  Alcotest.(check bool) "quick_network works" true (Rfd.Sim.now sim > 0.);
  Alcotest.(check bool) "cisco config damps" true
    (Rfd.cisco_damping_config.Config.damping <> None);
  Alcotest.(check bool) "rcn config mode" true
    (Rfd.rcn_damping_config.Config.damping_mode = Config.Rcn);
  let r = Rfd.simulate_flaps ~pulses:0 (Rfd.Scenario.make (Rfd.Scenario.Mesh { rows = 3; cols = 3 })) in
  Alcotest.(check int) "simulate_flaps override" 0 r.Rfd.Runner.message_count

let test_per_peer_mrai_paces_across_prefixes () =
  (* In per-peer mode, announcements for different prefixes to the same
     peer share one MRAI clock: after a simultaneous change to both
     prefixes, the second announcement waits a full interval. *)
  let run per_peer =
    let config =
      { fast with Config.mrai = 10.; mrai_per_peer = per_peer; mrai_jitter = (1.0, 1.0) }
    in
    let sim, net = make ~config (Builders.line 2) in
    let p1 = Prefix.v 1 in
    Network.originate net ~node:0 p0;
    Network.originate net ~node:0 p1;
    Network.run net;
    (* burn the MRAI budget with a change, then change both prefixes *)
    let announce_times = ref [] in
    (Network.hooks net).Hooks.on_deliver <-
      (fun ~time ~src ~dst u ->
        if src = 0 && dst = 1 && not (Update.is_withdrawal u) then
          announce_times := time :: !announce_times);
    let t = Sim.now sim +. 0.5 in
    Network.schedule_withdraw net ~at:t ~node:0 p0;
    Network.schedule_originate net ~at:(t +. 0.1) ~node:0 p0;
    Network.schedule_withdraw net ~at:t ~node:0 p1;
    Network.schedule_originate net ~at:(t +. 0.1) ~node:0 p1;
    Network.run net;
    List.sort Float.compare !announce_times
  in
  (match run true with
  | a :: b :: _ -> Alcotest.(check bool) "paced >= interval apart" true (b -. a >= 9.99)
  | _ -> Alcotest.fail "expected two announcements");
  match run false with
  | a :: b :: _ ->
      Alcotest.(check bool) "per-prefix mode does not pace across prefixes" true (b -. a < 9.99)
  | _ -> Alcotest.fail "expected two announcements"

let test_in_flight_messages_dropped_on_failure () =
  (* Fail a link while an update is in flight on it: the update must not be
     delivered after the failure. *)
  let config = { fast with Config.link_delay = 5. } in
  let sim, net = make ~config (Builders.line 2) in
  let delivered = count_deliveries net in
  Network.originate net ~node:0 p0;
  (* announcement to peer 1 is now in flight with 5 s delay; kill the link
     after 1 s *)
  ignore (Sim.schedule sim ~delay:1. (fun _ -> Network.fail_link net 0 1));
  Network.run net;
  Alcotest.(check int) "in-flight update dropped" 0 !delivered;
  Alcotest.(check bool) "peer never learned route" true
    (Router.best (Network.router net 1) p0 = None)

let suite =
  [
    Alcotest.test_case "duplicate originate" `Quick test_duplicate_originate_is_noop;
    Alcotest.test_case "spurious withdraw" `Quick test_spurious_withdraw_is_noop;
    Alcotest.test_case "duplicate announcement penalty" `Quick
      test_duplicate_announcement_no_penalty;
    Alcotest.test_case "withdrawal rate limiting" `Quick test_withdrawal_rate_limiting;
    Alcotest.test_case "session restart re-advertises" `Quick test_session_restart_readvertises;
    Alcotest.test_case "loop-detected announce" `Quick
      test_loop_detected_announce_treated_as_withdraw;
    Alcotest.test_case "rib accessors" `Quick test_rib_accessors;
    Alcotest.test_case "connect validation" `Quick test_connect_validation;
    Alcotest.test_case "facade conveniences" `Quick test_facade_conveniences;
    Alcotest.test_case "per-peer MRAI pacing" `Quick test_per_peer_mrai_paces_across_prefixes;
    Alcotest.test_case "in-flight drop on failure" `Quick
      test_in_flight_messages_dropped_on_failure;
  ]
