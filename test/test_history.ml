(* Tests for the bounded FIFO root-cause history. *)

module History = Rfd_damping.History

let observe_t =
  Alcotest.of_pp (fun ppf -> function
    | `New -> Format.pp_print_string ppf "new"
    | `Seen -> Format.pp_print_string ppf "seen")

let test_basic_membership () =
  let h = History.create () in
  Alcotest.(check bool) "absent" false (History.mem h 1);
  Alcotest.check observe_t "first observe" `New (History.observe h 1);
  Alcotest.(check bool) "present" true (History.mem h 1);
  Alcotest.check observe_t "second observe" `Seen (History.observe h 1);
  Alcotest.(check int) "length" 1 (History.length h)

let test_capacity_eviction () =
  let h = History.create ~capacity:3 () in
  List.iter (fun x -> ignore (History.add h x)) [ 1; 2; 3 ];
  Alcotest.(check int) "full" 3 (History.length h);
  ignore (History.add h 4);
  Alcotest.(check int) "stays at capacity" 3 (History.length h);
  Alcotest.(check bool) "oldest evicted" false (History.mem h 1);
  Alcotest.(check bool) "newest present" true (History.mem h 4);
  Alcotest.(check (list int)) "fifo order" [ 2; 3; 4 ] (History.to_list h)

let test_readd_not_refreshed () =
  let h = History.create ~capacity:2 () in
  ignore (History.add h 1);
  ignore (History.add h 2);
  (* re-adding 1 is a no-op: 1 stays oldest *)
  Alcotest.(check bool) "already present" true (History.add h 1 = `Already_present);
  ignore (History.add h 3);
  Alcotest.(check bool) "1 evicted despite re-add" false (History.mem h 1)

let test_clear () =
  let h = History.create () in
  ignore (History.add h 42);
  History.clear h;
  Alcotest.(check int) "cleared" 0 (History.length h);
  Alcotest.check observe_t "new again" `New (History.observe h 42)

let test_capacity_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "History.create: capacity must be positive") (fun () ->
      ignore (History.create ~capacity:0 () : int History.t))

let test_structural_keys () =
  (* Root causes are records: structural equality must apply. *)
  let module RC = Rfd_bgp.Root_cause in
  let h = History.create () in
  let rc1 = RC.make ~link:(1, 2) ~status:RC.Link_down ~seq:1 in
  let rc1' = RC.make ~link:(1, 2) ~status:RC.Link_down ~seq:1 in
  let rc2 = RC.make ~link:(1, 2) ~status:RC.Link_up ~seq:2 in
  Alcotest.check observe_t "new rc" `New (History.observe h rc1);
  Alcotest.check observe_t "structurally equal is seen" `Seen (History.observe h rc1');
  Alcotest.check observe_t "different seq is new" `New (History.observe h rc2)

let prop_length_bounded =
  QCheck.Test.make ~name:"length never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 20) (list small_int))
    (fun (capacity, xs) ->
      let h = History.create ~capacity () in
      List.iter (fun x -> ignore (History.add h x)) xs;
      History.length h <= capacity)

let prop_last_k_present =
  QCheck.Test.make ~name:"most recent distinct keys retained" ~count:200
    QCheck.(pair (int_range 1 10) (list_of_size Gen.(1 -- 50) small_int))
    (fun (capacity, xs) ->
      let h = History.create ~capacity () in
      List.iter (fun x -> ignore (History.add h x)) xs;
      (* the last element added is always present *)
      match List.rev xs with [] -> true | last :: _ -> History.mem h last)

let suite =
  [
    Alcotest.test_case "membership" `Quick test_basic_membership;
    Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
    Alcotest.test_case "re-add does not refresh" `Quick test_readd_not_refreshed;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "capacity validation" `Quick test_capacity_validation;
    Alcotest.test_case "root causes as keys" `Quick test_structural_keys;
    QCheck_alcotest.to_alcotest prop_length_bounded;
    QCheck_alcotest.to_alcotest prop_last_k_present;
  ]
