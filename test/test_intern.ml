(* The interning layer: list-reference equivalence for AS paths, physical
   sharing of interned routes, digest determinism (intern ids must be a
   pure function of the run), and intern-table behaviour under session
   churn (no id leaks, no collisions). *)

open Rfd_bgp
module Sim = Rfd_engine.Sim
module Rng = Rfd_engine.Rng
module RG = Rfd_topology.Random_graphs
module Scenario = Rfd_experiment.Scenario
module Runner = Rfd_experiment.Runner

let p0 = Prefix.v 0
let sign x = Stdlib.compare x 0

(* ------------------------------------------------------------------ *)
(* As_path: interned values must behave exactly like the seed-era raw
   int lists under equal / compare / hash / to_list.                   *)

let asn_list = QCheck.(list_of_size (Gen.int_range 0 8) (int_range 0 50))

let prop_list_reference =
  QCheck.Test.make ~name:"as_path matches int-list reference semantics" ~count:500
    (QCheck.pair asn_list asn_list) (fun (la, lb) ->
      let tbl = As_path.create_table () in
      let pa = As_path.intern tbl (As_path.of_list la) in
      let pb = As_path.intern tbl (As_path.of_list lb) in
      As_path.to_list pa = la
      && As_path.equal pa pb = List.equal Int.equal la lb
      && sign (As_path.compare pa pb) = sign (List.compare Int.compare la lb)
      (* equality must also hold across interned/uninterned representations *)
      && As_path.equal (As_path.of_list la) pa
      && As_path.equal pa (As_path.of_list la)
      (* hash is structural: list-equal implies hash-equal *)
      && (not (List.equal Int.equal la lb) || As_path.hash pa = As_path.hash pb)
      (* interning is injective: distinct lists get distinct ids *)
      && (List.equal Int.equal la lb || As_path.intern_id pa <> As_path.intern_id pb))

let test_intern_idempotent () =
  let tbl = As_path.create_table () in
  let p1 = As_path.intern tbl (As_path.of_list [ 3; 1; 2 ]) in
  let p2 = As_path.intern tbl (As_path.of_list [ 3; 1; 2 ]) in
  Alcotest.(check bool) "same list interns to the same value" true (p1 == p2);
  let q = As_path.prepend_interned tbl 7 p1 in
  let q' = As_path.intern tbl (As_path.of_list [ 7; 3; 1; 2 ]) in
  Alcotest.(check bool) "prepend_interned lands on the shared value" true (q == q');
  Alcotest.(check bool) "fresh positive id" true (As_path.intern_id q > 0);
  Alcotest.(check bool) "distinct paths, distinct ids" true
    (As_path.intern_id q <> As_path.intern_id p1);
  Alcotest.(check int) "empty path has id 0" 0 (As_path.intern_id As_path.empty);
  Alcotest.(check int) "uninterned values have id -1" (-1)
    (As_path.intern_id (As_path.of_list [ 9 ]));
  (* every suffix was interned along the way: 3 paths, not counting empty *)
  Alcotest.(check int) "table counts distinct non-empty paths" 4 (As_path.table_size tbl)

let test_route_interning () =
  let tbl = Route.create_table () in
  let r1 = Route.make_interned tbl ~prefix:p0 ~path:(As_path.of_list [ 1; 2 ]) in
  let r2 =
    Route.prepend_interned tbl 1 (Route.make_interned tbl ~prefix:p0 ~path:(As_path.of_list [ 2 ]))
  in
  Alcotest.(check bool) "same (prefix, path) is one shared record" true (r1 == r2);
  Alcotest.(check bool) "paths shared too" true (Route.path r1 == Route.path r2);
  let other = Route.make_interned tbl ~prefix:(Prefix.v 1) ~path:(As_path.of_list [ 1; 2 ]) in
  Alcotest.(check bool) "different prefix, different record" true (not (r1 == other));
  Alcotest.(check bool) "but the path spine is still shared" true
    (Route.path r1 == Route.path other);
  Alcotest.(check int) "distinct routes counted once each" 3 (Route.table_size tbl)

(* ------------------------------------------------------------------ *)
(* Digest determinism: intern ids are assigned in simulation order, so
   re-running the same scenario from scratch must produce a bit-identical
   result digest (this is what makes the interned representation safe to
   marshal — jobs=1 vs jobs=N digest comparisons elsewhere rely on it).   *)

let random_scenario seed =
  let rng = Rng.create seed in
  let n = 5 + Rng.int rng 10 in
  let graph = RG.random_spanning_connected (Rng.split rng) ~n ~extra_edges:(Rng.int rng n) in
  let config =
    Config.with_damping
      ~mode:(match Rng.int rng 3 with 0 -> Config.Plain | 1 -> Config.Rcn | _ -> Config.Selective)
      Rfd_damping.Params.cisco
      { Config.default with Config.mrai = float_of_int (Rng.int rng 4); seed }
  in
  Scenario.make
    ~name:(Printf.sprintf "intern-digest-%d" seed)
    ~config
    ~pulses:(1 + Rng.int rng 3)
    (Scenario.Custom graph)

let prop_digest_deterministic =
  QCheck.Test.make ~name:"result digest is a pure function of the scenario" ~count:15
    (QCheck.int_range 0 100_000) (fun seed ->
      let scenario = random_scenario seed in
      let d1 = Runner.result_digest (Runner.run scenario) in
      let d2 = Runner.result_digest (Runner.run scenario) in
      d1 = d2)

(* ------------------------------------------------------------------ *)
(* Session churn: repeating an identical fail/restore + crash/restart
   episode must not keep allocating intern ids (the path universe is
   fixed), and every route resident in any RIB stays a value of the
   network's shared table.                                              *)

let run_churn_episode net sim =
  let t0 = Sim.now sim +. 1. in
  Network.schedule_fail_link net ~at:t0 1 2;
  Network.schedule_restore_link net ~at:(t0 +. 40.) 1 2;
  Network.schedule_crash net ~at:(t0 +. 80.) 2;
  Network.schedule_restart net ~at:(t0 +. 120.) 2;
  Network.run net

let table_sizes net =
  let tbl = Network.route_table net in
  (Route.table_size tbl, As_path.table_size (Route.path_table tbl))

let assert_ribs_interned net =
  for node = 0 to Network.num_routers net - 1 do
    let r = Network.router net node in
    List.iter
      (fun prefix ->
        (match Router.best r prefix with
        | Some route ->
            Alcotest.(check bool) "loc-rib path interned" true
              (As_path.intern_id (Route.path route) >= 0)
        | None -> ());
        List.iter
          (fun peer ->
            match Router.rib_in_route r ~peer prefix with
            | Some route ->
                Alcotest.(check bool) "rib-in path interned" true
                  (As_path.intern_id (Route.path route) >= 0)
            | None -> ())
          (Router.peer_ids r))
      (Router.known_prefixes r)
  done

let test_churn_no_leak () =
  let graph = Rfd_topology.Builders.ring 5 in
  let config =
    Config.with_damping Rfd_damping.Params.cisco { Config.default with Config.mrai = 2. }
  in
  let sim = Sim.create () in
  let net = Network.create ~config sim graph in
  Network.originate net ~node:0 p0;
  Network.run net;
  run_churn_episode net sim;
  let routes1, paths1 = table_sizes net in
  Alcotest.(check bool) "churn observed some paths" true (routes1 > 0 && paths1 > 0);
  run_churn_episode net sim;
  let routes2, paths2 = table_sizes net in
  run_churn_episode net sim;
  let routes3, paths3 = table_sizes net in
  (* The first episode may discover exploration paths the initial
     convergence never produced; after that the route universe is closed,
     so identical episodes must not allocate new ids. *)
  Alcotest.(check int) "route ids stable under repeated churn" routes2 routes3;
  Alcotest.(check int) "path ids stable under repeated churn" paths2 paths3;
  assert_ribs_interned net

let test_restart_reuses_ids () =
  (* A crashed-and-restarted router re-learns its routes from the shared
     table: restarting every non-origin router one by one must not grow
     the table once the universe is closed. *)
  let graph = Rfd_topology.Builders.line 4 in
  let sim = Sim.create () in
  let net = Network.create ~config:Config.default sim graph in
  Network.originate net ~node:0 p0;
  Network.run net;
  let cycle () =
    for node = 1 to 3 do
      let t0 = Sim.now sim +. 1. in
      Network.schedule_crash net ~at:t0 node;
      Network.schedule_restart net ~at:(t0 +. 30.) node;
      Network.run net
    done
  in
  cycle ();
  let routes1, paths1 = table_sizes net in
  cycle ();
  let routes2, paths2 = table_sizes net in
  Alcotest.(check int) "routes stable across restart cycles" routes1 routes2;
  Alcotest.(check int) "paths stable across restart cycles" paths1 paths2;
  Alcotest.(check bool) "network converged" true (Network.converged net p0);
  assert_ribs_interned net

let suite =
  [
    QCheck_alcotest.to_alcotest prop_list_reference;
    Alcotest.test_case "intern idempotent, ids unique" `Quick test_intern_idempotent;
    Alcotest.test_case "route interning shares storage" `Quick test_route_interning;
    QCheck_alcotest.to_alcotest prop_digest_deterministic;
    Alcotest.test_case "churn leaks no intern ids" `Quick test_churn_no_leak;
    Alcotest.test_case "restart reuses intern ids" `Quick test_restart_reuses_ids;
  ]
