(* Transport-layer guarantees: per-link FIFO under jitter, quiescence
   bookkeeping, and simulator edge cases surfaced through the network. *)

open Rfd_bgp
module Sim = Rfd_engine.Sim
module Builders = Rfd_topology.Builders

let p0 = Prefix.v 0

let test_fifo_under_jitter () =
  (* Huge jitter relative to the inter-send gap: without the FIFO floor,
     updates would reorder and the receiver could end on stale state. We
     check both that delivery order equals send order on the (0 -> 1) link
     and that the final state matches the last event (an announcement). *)
  let config =
    {
      Config.default with
      Config.mrai = 0.;
      link_delay = 0.05;
      link_jitter = 5.0;
      seed = 99;
    }
  in
  let sim = Sim.create () in
  let net = Network.create ~config sim (Builders.line 2) in
  let sent = ref [] and delivered = ref [] in
  let h = Network.hooks net in
  h.Hooks.on_send <-
    (fun ~time:_ ~src ~dst u ->
      if src = 0 && dst = 1 then sent := Update.is_withdrawal u :: !sent);
  h.Hooks.on_deliver <-
    (fun ~time:_ ~src ~dst u ->
      if src = 0 && dst = 1 then delivered := Update.is_withdrawal u :: !delivered);
  Network.originate net ~node:0 p0;
  Network.run net;
  for i = 0 to 19 do
    let t = Sim.now sim +. 0.01 +. (0.02 *. float_of_int i) in
    if i mod 2 = 0 then Network.schedule_withdraw net ~at:t ~node:0 p0
    else Network.schedule_originate net ~at:t ~node:0 p0
  done;
  Network.run net;
  Alcotest.(check (list bool)) "delivery order = send order" (List.rev !sent)
    (List.rev !delivered);
  Alcotest.(check int) "ends reachable (last event was announce)" 2
    (Network.reachable_count net p0);
  Alcotest.(check bool) "fixpoint" true (Network.converged net p0)

let test_delivery_times_monotone_per_link () =
  let config =
    { Config.default with Config.mrai = 0.; link_delay = 0.01; link_jitter = 2.0; seed = 3 }
  in
  let sim = Sim.create () in
  let net = Network.create ~config sim (Builders.ring 4) in
  let last = Hashtbl.create 8 in
  let ok = ref true in
  (Network.hooks net).Hooks.on_deliver <-
    (fun ~time ~src ~dst _ ->
      (match Hashtbl.find_opt last (src, dst) with
      | Some prev when time < prev -> ok := false
      | _ -> ());
      Hashtbl.replace last (src, dst) time);
  Network.originate net ~node:0 p0;
  Network.run net;
  Network.withdraw net ~node:0 p0;
  Network.run net;
  Alcotest.(check bool) "per-link delivery times never regress" true !ok

let test_failed_link_sends_are_dropped_silently () =
  let sim = Sim.create () in
  let config = { Config.default with Config.mrai = 0.; link_jitter = 0. } in
  let net = Network.create ~config sim (Builders.ring 4) in
  Network.originate net ~node:0 p0;
  Network.run net;
  Network.fail_link net 0 1;
  Network.run net;
  (* further changes while the link is down: no deliveries on (0, 1) *)
  let on_dead_link = ref 0 in
  (Network.hooks net).Hooks.on_deliver <-
    (fun ~time:_ ~src ~dst _ ->
      if (src = 0 && dst = 1) || (src = 1 && dst = 0) then incr on_dead_link);
  Network.withdraw net ~node:0 p0;
  Network.run net;
  Network.originate net ~node:0 p0;
  Network.run net;
  Alcotest.(check int) "nothing crosses a dead link" 0 !on_dead_link;
  (* the long way round still works *)
  Alcotest.(check int) "reachable via the other side" 4 (Network.reachable_count net p0)

let test_double_fail_restore_idempotent () =
  let sim = Sim.create () in
  let net = Network.create ~config:Config.default sim (Builders.ring 4) in
  Network.originate net ~node:0 p0;
  Network.run net;
  Network.fail_link net 0 1;
  Network.fail_link net 0 1;
  Network.run net;
  Network.restore_link net 0 1;
  Network.restore_link net 0 1;
  Network.run net;
  Alcotest.(check bool) "link up" true (Network.link_up net 0 1);
  Alcotest.(check int) "reconverged" 4 (Network.reachable_count net p0);
  Alcotest.check_raises "non-adjacent" (Invalid_argument "Network: (0,2) is not a link")
    (fun () -> Network.fail_link net 0 2)

let test_scheduled_link_events () =
  let sim = Sim.create () in
  let config = { Config.default with Config.mrai = 0. } in
  let net = Network.create ~config sim (Builders.ring 4) in
  Network.originate net ~node:0 p0;
  Network.run net;
  let t = Sim.now sim in
  Network.schedule_fail_link net ~at:(t +. 5.) 0 1;
  Network.schedule_restore_link net ~at:(t +. 50.) 0 1;
  Network.run ~until:(t +. 20.) net;
  Alcotest.(check bool) "down in between" false (Network.link_up net 0 1);
  Network.run net;
  Alcotest.(check bool) "up afterwards" true (Network.link_up net 0 1);
  Alcotest.(check int) "reconverged" 4 (Network.reachable_count net p0)

let test_router_accessor_validation () =
  let sim = Sim.create () in
  let net = Network.create ~config:Config.default sim (Builders.line 2) in
  Alcotest.check_raises "bad node" (Invalid_argument "Network.router: node 5 out of range")
    (fun () -> ignore (Network.router net 5));
  Alcotest.(check int) "router count" 2 (Network.num_routers net)

let suite =
  [
    Alcotest.test_case "FIFO under jitter" `Quick test_fifo_under_jitter;
    Alcotest.test_case "monotone per-link delivery" `Quick
      test_delivery_times_monotone_per_link;
    Alcotest.test_case "dead-link sends dropped" `Quick
      test_failed_link_sends_are_dropped_silently;
    Alcotest.test_case "fail/restore idempotent" `Quick test_double_fail_restore_idempotent;
    Alcotest.test_case "scheduled link events" `Quick test_scheduled_link_events;
    Alcotest.test_case "accessor validation" `Quick test_router_accessor_validation;
  ]
