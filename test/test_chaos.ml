(* Tests for the deterministic chaos proxy and — through it — the
   client's failure handling. Each injected fault must surface as a
   clean [Error] on the exact roundtrip it hits, and any transport or
   framing error must poison the client: the next call fails fast with
   "client is closed" instead of desynchronizing the line framing
   (the regression this PR fixes). *)

module Protocol = Rfd_service.Protocol
module Server = Rfd_service.Server
module Client = Rfd_service.Client
module Chaos = Rfd_service.Chaos

let tmp_path suffix = Filename.temp_file "rfd-chaos" suffix

let small_spec ?(seed = 42) () =
  {
    Protocol.default_spec with
    Protocol.topology = Protocol.Mesh { rows = 3; cols = 3 };
    seed;
    pulses = 1;
  }

(* Real daemon upstream, chaos proxy in front, client against the proxy. *)
let with_chaos plan f =
  let upstream = tmp_path ".sock" in
  let proxy_sock = tmp_path ".proxy.sock" in
  let journal = tmp_path ".journal" in
  Sys.remove journal;
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ upstream; proxy_sock; journal ]
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let cfg =
    {
      (Server.default_config ~socket_path:upstream ~journal_path:journal) with
      Server.jobs = Some 1;
      deadline = Some 60.;
      retries = 0;
      io_timeout = 5.;
    }
  in
  let t = Server.create cfg in
  let d = Domain.spawn (fun () -> Server.serve t) in
  let proxy = Chaos.start ~io_timeout:10. ~socket:proxy_sock ~upstream plan in
  Fun.protect
    ~finally:(fun () ->
      Chaos.stop proxy;
      Server.request_stop t;
      ignore (Domain.join d : Server.stop))
    (fun () -> f ~proxy_sock ~upstream ~proxy)

let connect path = Client.connect ~timeout:10. ~retry_for:5. path

let check_poisoned name client =
  (* The satellite regression: after any transport/framing error every
     subsequent call must fail fast, never reuse the broken stream. *)
  match Client.query ~attempts:1 client (small_spec ()) with
  | Error "client is closed" -> ()
  | Error e ->
      Alcotest.fail (Printf.sprintf "%s: poisoned error was %S" name e)
  | Ok _ -> Alcotest.fail (Printf.sprintf "%s: poisoned client answered" name)

let test_pass_through_is_transparent () =
  with_chaos (Chaos.script_plan [ Chaos.Pass; Chaos.Pass ])
  @@ fun ~proxy_sock ~upstream ~proxy ->
  let spec = small_spec () in
  let via_proxy = connect proxy_sock in
  let body_proxy =
    match Client.query ~attempts:1 via_proxy spec with
    | Ok (Protocol.Result { body; _ }) -> body
    | _ -> Alcotest.fail "pass-through query failed"
  in
  Alcotest.(check bool) "pings pass through" true (Client.ping via_proxy);
  Client.close via_proxy;
  let direct = connect upstream in
  (match Client.query ~attempts:1 direct spec with
  | Ok (Protocol.Result { body; _ }) ->
      Alcotest.(check string) "proxied body is byte-identical" body body_proxy
  | _ -> Alcotest.fail "direct query failed");
  Client.close direct;
  Alcotest.(check bool) "proxy counted its connections" true
    (Chaos.connections proxy >= 1)

let test_refuse_poisons_client () =
  with_chaos (Chaos.script_plan [ Chaos.Refuse ])
  @@ fun ~proxy_sock ~upstream:_ ~proxy:_ ->
  let client = connect proxy_sock in
  (match Client.query ~attempts:1 client (small_spec ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "refused connection answered");
  check_poisoned "refuse" client;
  Client.close client

let test_close_mid_line_poisons_client () =
  with_chaos (Chaos.script_plan [ Chaos.Close_mid_line ])
  @@ fun ~proxy_sock ~upstream:_ ~proxy:_ ->
  let client = connect proxy_sock in
  (match Client.query ~attempts:1 client (small_spec ()) with
  | Error e ->
      Alcotest.(check string) "EOF mid-line reported" "connection closed by server" e
  | Ok _ -> Alcotest.fail "half a response parsed as a response");
  check_poisoned "close-mid-line" client;
  Client.close client

let test_truncated_response_poisons_client () =
  with_chaos (Chaos.script_plan [ Chaos.Truncate 3 ])
  @@ fun ~proxy_sock ~upstream:_ ~proxy:_ ->
  let client = connect proxy_sock in
  (match Client.ping client with
  | false -> ()
  | true -> Alcotest.fail "3 bytes of a response parsed as a pong");
  check_poisoned "truncate" client;
  Client.close client

let test_garbage_line_poisons_client () =
  with_chaos (Chaos.script_plan [ Chaos.Garbage ])
  @@ fun ~proxy_sock ~upstream:_ ~proxy:_ ->
  let client = connect proxy_sock in
  (match Client.query ~attempts:1 client (small_spec ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage line parsed as a response");
  check_poisoned "garbage" client;
  Client.close client

let test_delay_is_benign () =
  with_chaos (Chaos.script_plan [ Chaos.Delay 0.2 ])
  @@ fun ~proxy_sock ~upstream:_ ~proxy:_ ->
  let client = connect proxy_sock in
  Alcotest.(check bool) "delayed pong still a pong" true (Client.ping client);
  Alcotest.(check bool) "client still usable after a benign delay" true
    (Client.ping client);
  Client.close client

let test_reconnect_after_poison () =
  (* Connection 0 gets garbage, connection 1 is clean: recovery is a
     reconnect, exactly what Fleet does. *)
  with_chaos (Chaos.script_plan [ Chaos.Garbage; Chaos.Pass ])
  @@ fun ~proxy_sock ~upstream:_ ~proxy:_ ->
  let first = connect proxy_sock in
  (match Client.query ~attempts:1 first (small_spec ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  check_poisoned "garbage" first;
  Client.close first;
  let second = connect proxy_sock in
  (match Client.query ~attempts:1 second (small_spec ()) with
  | Ok (Protocol.Result _) -> ()
  | _ -> Alcotest.fail "fresh connection after poison failed");
  Client.close second

let test_seeded_plan_is_deterministic () =
  let faults = [ Chaos.Pass; Chaos.Refuse; Chaos.Garbage; Chaos.Truncate 4 ] in
  let a = Chaos.seeded_plan ~seed:7 faults in
  let b = Chaos.seeded_plan ~seed:7 faults in
  let c = Chaos.seeded_plan ~seed:8 faults in
  let draw plan = List.init 32 (fun i -> Chaos.fault_to_string (plan i)) in
  Alcotest.(check (list string)) "same seed, same fault sequence" (draw a) (draw b);
  Alcotest.(check bool) "different seed, different sequence" true
    (draw a <> draw c);
  (* Every drawn fault comes from the offered list. *)
  let offered = List.map Chaos.fault_to_string faults in
  List.iter
    (fun f -> Alcotest.(check bool) "fault from the list" true (List.mem f offered))
    (draw a)

let suite =
  [
    Alcotest.test_case "pass-through is byte-transparent" `Quick
      test_pass_through_is_transparent;
    Alcotest.test_case "refuse poisons the client" `Quick
      test_refuse_poisons_client;
    Alcotest.test_case "close mid-line poisons the client" `Quick
      test_close_mid_line_poisons_client;
    Alcotest.test_case "truncated response poisons the client" `Quick
      test_truncated_response_poisons_client;
    Alcotest.test_case "garbage line poisons the client" `Quick
      test_garbage_line_poisons_client;
    Alcotest.test_case "latency alone is benign" `Quick test_delay_is_benign;
    Alcotest.test_case "reconnect recovers after poison" `Quick
      test_reconnect_after_poison;
    Alcotest.test_case "seeded plans are deterministic" `Quick
      test_seeded_plan_is_deterministic;
  ]
