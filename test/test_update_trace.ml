(* The rfd-trace/1 update-trace text format: exact round-trips, strict
   line-numbered parse errors, replay helpers, and the deterministic
   heavy-tailed flapper generator. *)

module Trace = Rfd_experiment.Trace

let trace_testable = Alcotest.testable Trace.pp ( = )

let check_error label expected_sub input =
  match Trace.of_string input with
  | Ok _ -> Alcotest.failf "%s: parser accepted malformed input" label
  | Error msg ->
      let contains sub =
        let n = String.length sub and m = String.length msg in
        let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" label msg expected_sub)
        true (contains expected_sub)

let test_parse_simple () =
  let doc =
    "rfd-trace/1\n# a comment\n\n0 17 withdraw 3\n4.25 17 announce 3\n60 9 withdraw\n"
  in
  match Trace.of_string doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok events ->
      Alcotest.(check int) "three events" 3 (List.length events);
      let first = List.hd events in
      Alcotest.(check (float 0.)) "time" 0. first.Trace.time;
      Alcotest.(check int) "prefix" 17 first.Trace.prefix;
      Alcotest.(check bool) "kind" true (first.Trace.kind = Trace.Withdraw);
      Alcotest.(check (option int)) "origin" (Some 3) first.Trace.origin;
      let last = List.nth events 2 in
      Alcotest.(check (option int)) "stub origin omitted" None last.Trace.origin;
      Alcotest.(check (float 0.)) "last_time" 60. (Trace.last_time events);
      Alcotest.(check int) "max_prefix" 17 (Trace.max_prefix events);
      Alcotest.(check int) "max_origin" 3 (Trace.max_origin events)

let test_round_trip_exact () =
  (* Awkward floats on purpose: the printer must round-trip every bit. *)
  let t =
    [
      { Trace.time = 0.1; prefix = 2; kind = Trace.Withdraw; origin = Some 0 };
      { Trace.time = 1. /. 3.; prefix = 2; kind = Trace.Announce; origin = Some 0 };
      { Trace.time = 1e-9 +. 1.; prefix = 5; kind = Trace.Withdraw; origin = None };
      { Trace.time = 1234.56789012345678; prefix = 5; kind = Trace.Announce; origin = None };
    ]
  in
  Alcotest.(check (result trace_testable string))
    "of_string (to_string t) = Ok t" (Ok t)
    (Trace.of_string (Trace.to_string t))

let test_parse_errors () =
  check_error "missing header" "missing header" "";
  check_error "bad header" "bad header" "rfd-trace/2\n0 1 withdraw\n";
  check_error "bad time" "line 2: bad time" "rfd-trace/1\nsoon 1 withdraw\n";
  check_error "bad prefix" "line 2: bad prefix" "rfd-trace/1\n0 one withdraw\n";
  check_error "bad kind" "line 3: bad event kind"
    "rfd-trace/1\n0 1 withdraw\n1 1 announced\n";
  check_error "bad origin" "line 2: bad origin" "rfd-trace/1\n0 1 withdraw x\n";
  check_error "field count" "line 4: expected 3 or 4 fields"
    "rfd-trace/1\n# ok\n0 1 withdraw\n1 1 announce 2 3\n";
  (* Header is counted too: comments before it shift line numbers. *)
  check_error "line numbers skip comments" "line 4: bad time"
    "# preamble\nrfd-trace/1\n0 1 withdraw\nx 1 announce\n"

let test_validation_errors () =
  check_error "prefix 0 reserved" "prefix 0 is the measured origin prefix"
    "rfd-trace/1\n0 0 withdraw\n";
  check_error "non-decreasing times" "times must be non-decreasing"
    "rfd-trace/1\n5 1 withdraw\n4 2 withdraw\n";
  check_error "per-prefix strictly increasing" "must be strictly increasing"
    "rfd-trace/1\n5 1 withdraw\n5 1 announce\n";
  check_error "negative origin" "origin must be non-negative"
    "rfd-trace/1\n0 1 withdraw -2\n";
  Alcotest.(check bool)
    "validate rejects non-finite times" true
    (Trace.validate
       [ { Trace.time = infinity; prefix = 1; kind = Trace.Withdraw; origin = None } ]
    |> Result.is_error)

let test_pre_originations () =
  let doc =
    "rfd-trace/1\n\
     0 4 withdraw 2\n\
     1 9 announce\n\
     2 7 withdraw\n\
     3 4 announce 2\n\
     4 9 withdraw\n"
  in
  match Trace.of_string doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t ->
      (* Only prefixes opening with a withdrawal, in first-occurrence order;
         prefix 9 opens with an announcement and must not be listed. *)
      Alcotest.(check (list (pair (option int) int)))
        "withdraw-first prefixes in order"
        [ (Some 2, 4); (None, 7) ]
        (Trace.pre_originations t)

let test_flappers_shape () =
  let count = 25 and flaps = 4 and first_prefix = 11 in
  let t =
    Trace.flappers ~seed:7 ~nodes:9 ~count ~flaps ~mean_gap:30. ~alpha:1.5 ~first_prefix
  in
  Alcotest.(check int) "2 events per flap per flapper" (count * flaps * 2)
    (Trace.event_count t);
  Alcotest.(check (result unit string)) "valid by construction" (Ok ())
    (Trace.validate t);
  Alcotest.(check int) "prefixes end at first_prefix+count-1"
    (first_prefix + count - 1) (Trace.max_prefix t);
  Alcotest.(check bool) "origins within the node range" true
    (Trace.max_origin t < 9);
  Alcotest.(check int) "every flapper opens with a withdrawal" count
    (List.length (Trace.pre_originations t));
  Alcotest.(check trace_testable) "equal seed, equal trace" t
    (Trace.flappers ~seed:7 ~nodes:9 ~count ~flaps ~mean_gap:30. ~alpha:1.5
       ~first_prefix)

let test_flappers_rejects_bad_params () =
  let check_raises name msg f =
    Alcotest.check_raises name (Invalid_argument msg) (fun () -> ignore (f ()))
  in
  let gen ?(nodes = 4) ?(count = 1) ?(flaps = 1) ?(mean_gap = 10.) ?(alpha = 1.5)
      ?(first_prefix = 1) () =
    Trace.flappers ~seed:1 ~nodes ~count ~flaps ~mean_gap ~alpha ~first_prefix
  in
  check_raises "no nodes" "Trace.flappers: nodes must be positive" (gen ~nodes:0);
  check_raises "negative count" "Trace.flappers: count must be non-negative"
    (gen ~count:(-1));
  check_raises "zero flaps" "Trace.flappers: flaps must be positive" (gen ~flaps:0);
  check_raises "zero gap" "Trace.flappers: mean_gap must be positive and finite"
    (gen ~mean_gap:0.);
  check_raises "infinite alpha" "Trace.flappers: alpha must be positive and finite"
    (gen ~alpha:infinity);
  check_raises "reserved prefix" "Trace.flappers: first_prefix must be >= 1"
    (gen ~first_prefix:0)

let prop_generated_traces_round_trip =
  QCheck.Test.make ~count:50 ~name:"flapper traces round-trip through the text form"
    QCheck.(
      quad (int_range 0 10000) (int_range 0 20) (int_range 1 5)
        (pair (float_range 0.5 120.) (float_range 0.2 4.)))
    (fun (seed, count, flaps, (mean_gap, alpha)) ->
      let t =
        Trace.flappers ~seed ~nodes:9 ~count ~flaps ~mean_gap ~alpha ~first_prefix:3
      in
      Trace.validate t = Ok () && Trace.of_string (Trace.to_string t) = Ok t)

let prop_junk_never_crashes =
  (* The parser's contract: any input yields Ok or Error, never an
     exception — junk lines, stray whitespace, truncated fields. *)
  QCheck.Test.make ~count:200 ~name:"parser totality on junk input"
    QCheck.(string_gen_of_size Gen.(int_range 0 120) Gen.printable)
    (fun s ->
      match Trace.of_string s with
      | Ok _ | Error _ -> true)

let suite =
  [
    Alcotest.test_case "parse a simple trace" `Quick test_parse_simple;
    Alcotest.test_case "round-trip is bit-exact" `Quick test_round_trip_exact;
    Alcotest.test_case "parse errors carry line numbers" `Quick test_parse_errors;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Alcotest.test_case "pre-originations" `Quick test_pre_originations;
    Alcotest.test_case "flapper generator shape" `Quick test_flappers_shape;
    Alcotest.test_case "flapper generator rejects bad parameters" `Quick
      test_flappers_rejects_bad_params;
    QCheck_alcotest.to_alcotest prop_generated_traces_round_trip;
    QCheck_alcotest.to_alcotest prop_junk_never_crashes;
  ]
