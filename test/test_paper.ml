(* Integration tests asserting the paper's qualitative findings at reduced
   scale (6x6 mesh instead of 10x10 keeps the suite fast while preserving
   path-exploration richness). *)

module Scenario = Rfd_experiment.Scenario
module Runner = Rfd_experiment.Runner
module Collector = Rfd_experiment.Collector
module Intended = Rfd_experiment.Intended
module Phases = Rfd_experiment.Phases
module Params = Rfd_damping.Params
open Rfd_bgp

let mesh = Scenario.Mesh { rows = 6; cols = 6 }

let config ~damping ~mode =
  let base = Config.default in
  if damping then Config.with_damping ~mode Params.cisco base else base

let run ?(mode = Config.Plain) ~damping ~pulses () =
  Runner.run (Scenario.make ~config:(config ~damping ~mode) ~pulses mesh)

(* Cache runs: each is ~10-100 ms, but several tests share them. *)
let plain_1 = lazy (run ~damping:true ~pulses:1 ())
let nodamp_1 = lazy (run ~damping:false ~pulses:1 ())
let rcn_1 = lazy (run ~mode:Config.Rcn ~damping:true ~pulses:1 ())

let test_false_suppression_after_single_flap () =
  (* Paper (and Mao et al.): one flap triggers route suppression somewhere
     in the network through path exploration. *)
  let r = Lazy.force plain_1 in
  Alcotest.(check bool) "suppressions happened" true
    (Collector.suppress_events r.Runner.collector > 0);
  Alcotest.(check bool) "single flap converges eventually" true
    (r.Runner.convergence_time > 0.)

let test_single_flap_much_slower_than_no_damping () =
  (* Figure 8, n=1: damping convergence is orders of magnitude beyond
     no-damping. *)
  let damp = Lazy.force plain_1 in
  let plain = Lazy.force nodamp_1 in
  Alcotest.(check bool)
    (Printf.sprintf "damped %.0fs >> undamped %.0fs" damp.Runner.convergence_time
       plain.Runner.convergence_time)
    true
    (damp.Runner.convergence_time > 10. *. plain.Runner.convergence_time)

let test_releasing_dominates_convergence () =
  (* Paper Section 5.3: the releasing period accounts for the majority of
     total convergence time after a single pulse. *)
  let r = Lazy.force plain_1 in
  let releasing = Phases.total Phases.Releasing r.Runner.spans in
  let charging = Phases.total Phases.Charging r.Runner.spans in
  Alcotest.(check bool)
    (Printf.sprintf "releasing %.0f > charging %.0f" releasing charging)
    true (releasing > charging)

let test_amplification () =
  (* One pulse (2 origin updates) is amplified to hundreds of updates. *)
  let r = Lazy.force plain_1 in
  Alcotest.(check bool)
    (Printf.sprintf "%d updates from one pulse" r.Runner.message_count)
    true
    (r.Runner.message_count > 50)

let test_muffling_matches_intended_for_many_pulses () =
  (* Figure 8 beyond the critical point: measured convergence approaches
     the calculated intended value. *)
  let pulses = 10 in
  let r = run ~damping:true ~pulses () in
  let intended =
    Intended.convergence_time Params.cisco ~pulses ~interval:60. ~tup:r.Runner.tup
  in
  let ratio = r.Runner.convergence_time /. intended in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.0f vs intended %.0f (ratio %.2f)" r.Runner.convergence_time
       intended ratio)
    true
    (ratio > 0.8 && ratio < 1.3)

let test_message_count_saturates () =
  (* Figure 9: with damping, the message count stops growing once the isp
     suppresses the flapping route; without damping it keeps climbing. *)
  let damp_4 = run ~damping:true ~pulses:4 () in
  let damp_8 = run ~damping:true ~pulses:8 () in
  let plain_4 = run ~damping:false ~pulses:4 () in
  let plain_8 = run ~damping:false ~pulses:8 () in
  let damp_growth =
    float_of_int damp_8.Runner.message_count /. float_of_int damp_4.Runner.message_count
  in
  let plain_growth =
    float_of_int plain_8.Runner.message_count /. float_of_int plain_4.Runner.message_count
  in
  Alcotest.(check bool)
    (Printf.sprintf "damping growth %.2f < no-damping growth %.2f" damp_growth plain_growth)
    true (damp_growth < plain_growth);
  Alcotest.(check bool) "damped msgs nearly flat" true (damp_growth < 1.35)

let test_rcn_removes_long_tail () =
  (* Figure 13, small n: RCN-enhanced damping converges like no-damping
     after a single flap (no false suppression, no timer interaction). *)
  let rcn = Lazy.force rcn_1 in
  let plain = Lazy.force plain_1 in
  Alcotest.(check int) "no suppression under RCN" 0
    (Collector.suppress_events rcn.Runner.collector);
  Alcotest.(check bool)
    (Printf.sprintf "rcn %.0fs << damping %.0fs" rcn.Runner.convergence_time
       plain.Runner.convergence_time)
    true
    (rcn.Runner.convergence_time < 0.2 *. plain.Runner.convergence_time)

let test_rcn_matches_intended_at_onset () =
  (* Figure 13: with RCN, suppression starts exactly at the calculated
     onset (3 pulses for Cisco/60 s) and convergence tracks the formula. *)
  let pulses = 3 in
  let r = run ~mode:Config.Rcn ~damping:true ~pulses () in
  Alcotest.(check bool) "suppression now happens" true
    (Collector.suppress_events r.Runner.collector > 0);
  let intended =
    Intended.convergence_time Params.cisco ~pulses ~interval:60. ~tup:r.Runner.tup
  in
  let ratio = r.Runner.convergence_time /. intended in
  Alcotest.(check bool)
    (Printf.sprintf "rcn %.0f ~ intended %.0f" r.Runner.convergence_time intended)
    true
    (ratio > 0.8 && ratio < 1.3)

let test_rcn_at_two_pulses_no_suppression () =
  let r = run ~mode:Config.Rcn ~damping:true ~pulses:2 () in
  Alcotest.(check bool) "isp not suppressed below onset" true
    (r.Runner.convergence_time < 300.)

let test_policy_reduces_deviation () =
  (* Figure 15: no-valley policy reduces path exploration, moving
     convergence (after a single flap) closer to intended. *)
  let internet = Scenario.Internet { nodes = 60; m = 2 } in
  let with_policy =
    Runner.run
      (Scenario.make ~policy:Scenario.No_valley
         ~config:(config ~damping:true ~mode:Config.Plain)
         ~pulses:1 internet)
  in
  let without_policy =
    Runner.run
      (Scenario.make ~config:(config ~damping:true ~mode:Config.Plain) ~pulses:1 internet)
  in
  Alcotest.(check bool)
    (Printf.sprintf "policy %d suppressions <= no policy %d"
       (Collector.suppress_events with_policy.Runner.collector)
       (Collector.suppress_events without_policy.Runner.collector))
    true
    (Collector.suppress_events with_policy.Runner.collector
    <= Collector.suppress_events without_policy.Runner.collector)

let test_peak_penalty_well_below_12000 () =
  (* Section 5.2: path exploration alone cannot drive the penalty to the
     12000 needed for a one-hour suppression. *)
  let r = Lazy.force plain_1 in
  Alcotest.(check bool)
    (Printf.sprintf "peak %.0f < 12000" (Collector.peak_penalty r.Runner.collector))
    true
    (Collector.peak_penalty r.Runner.collector < 12000.)

let test_paper_scale_headline_regression () =
  (* Pin the headline numbers of the default paper-scale run (seed 42) with
     generous tolerances: catches silent behavioural drift without
     forbidding harmless refactors. Documented values: 3330 updates,
     5193 s convergence, 335 peak damped links. *)
  let r =
    Runner.run
      (Scenario.make ~config:(Config.with_damping Params.cisco Config.default) ~pulses:1
         Scenario.paper_mesh)
  in
  let within lo hi v = v >= lo && v <= hi in
  Alcotest.(check bool)
    (Printf.sprintf "convergence %.0f in [4000, 6500]" r.Runner.convergence_time)
    true
    (within 4000. 6500. r.Runner.convergence_time);
  Alcotest.(check bool)
    (Printf.sprintf "messages %d in [2000, 5000]" r.Runner.message_count)
    true
    (within 2000. 5000. (float_of_int r.Runner.message_count));
  Alcotest.(check bool)
    (Printf.sprintf "peak damped %d in [200, 400]" (Collector.peak_damped r.Runner.collector))
    true
    (within 200. 400. (float_of_int (Collector.peak_damped r.Runner.collector)))

let suite =
  [
    Alcotest.test_case "false suppression after one flap" `Slow
      test_false_suppression_after_single_flap;
    Alcotest.test_case "single flap slow convergence" `Slow
      test_single_flap_much_slower_than_no_damping;
    Alcotest.test_case "releasing dominates" `Slow test_releasing_dominates_convergence;
    Alcotest.test_case "update amplification" `Slow test_amplification;
    Alcotest.test_case "muffling: intended behaviour at large n" `Slow
      test_muffling_matches_intended_for_many_pulses;
    Alcotest.test_case "message count saturates" `Slow test_message_count_saturates;
    Alcotest.test_case "RCN removes the long tail" `Slow test_rcn_removes_long_tail;
    Alcotest.test_case "RCN matches intended at onset" `Slow test_rcn_matches_intended_at_onset;
    Alcotest.test_case "RCN below onset converges fast" `Slow
      test_rcn_at_two_pulses_no_suppression;
    Alcotest.test_case "no-valley policy reduces deviation" `Slow test_policy_reduces_deviation;
    Alcotest.test_case "peak penalty below 12000" `Slow test_peak_penalty_well_below_12000;
    Alcotest.test_case "paper-scale headline regression" `Slow
      test_paper_scale_headline_regression;
  ]
