(* Tests for gnuplot emission and the Sim.every periodic helper (small
   utility additions grouped in one suite). *)

module Plot = Rfd_experiment.Plot
module Sim = Rfd_engine.Sim

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let sample_plot () =
  Plot.make ~name:"figX" ~title:"A title" ~x_label:"pulses" ~y_label:"seconds"
    [ ("a", [ (1., 10.); (2., 20.) ]); ("b", [ (2., 5.) ]) ]

let test_data_file () =
  let data = Plot.data_file (sample_plot ()) in
  let lines = String.split_on_char '\n' data |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check bool) "missing point marked" true (contains ~needle:"?" data);
  Alcotest.(check bool) "x column" true (contains ~needle:"1 10 ?" data);
  Alcotest.(check bool) "shared x row" true (contains ~needle:"2 20 5" data)

let test_script () =
  let s =
    Plot.script (sample_plot ()) ~data_filename:"figX.dat" ~output_filename:"figX.png"
  in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle s))
    [
      "set terminal pngcairo";
      "set output \"figX.png\"";
      "set title \"A title\"";
      "set datafile missing '?'";
      "using 1:2 with linespoints title \"a\"";
      "using 1:3 with linespoints title \"b\"";
    ];
  Alcotest.(check bool) "no logscale by default" false (contains ~needle:"logscale" s);
  let log_plot =
    Plot.make ~logscale_y:true ~style:`Steps ~name:"l" ~title:"t" ~x_label:"x" ~y_label:"y"
      [ ("s", [ (1., 1.) ]) ]
  in
  let s2 = Plot.script log_plot ~data_filename:"l.dat" ~output_filename:"l.png" in
  Alcotest.(check bool) "logscale" true (contains ~needle:"set logscale y" s2);
  Alcotest.(check bool) "steps style" true (contains ~needle:"with steps" s2)

let test_write () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "rfd_plot_test" in
  Plot.write (sample_plot ()) ~dir;
  Alcotest.(check bool) "dat exists" true (Sys.file_exists (Filename.concat dir "figX.dat"));
  Alcotest.(check bool) "gp exists" true (Sys.file_exists (Filename.concat dir "figX.gp"));
  Sys.remove (Filename.concat dir "figX.dat");
  Sys.remove (Filename.concat dir "figX.gp")

(* --- Sim.every --- *)

let test_every_basic () =
  let sim = Sim.create () in
  let ticks = ref [] in
  let _ =
    Sim.every sim ~interval:10. (fun sim ->
        ticks := Sim.now sim :: !ticks;
        List.length !ticks < 3)
  in
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "three ticks" [ 10.; 20.; 30. ] (List.rev !ticks)

let test_every_with_start () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  let _ =
    Sim.every sim ~interval:5. ~start:2. (fun _ ->
        incr ticks;
        !ticks < 2)
  in
  Sim.run sim;
  Alcotest.(check int) "two ticks" 2 !ticks;
  Alcotest.(check (float 1e-9)) "clock at second tick" 7. (Sim.now sim)

let test_every_stop () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  let task = Sim.every sim ~interval:1. (fun _ -> incr ticks; true) in
  ignore (Sim.schedule_at sim ~time:3.5 (fun sim -> Sim.stop sim task));
  (* without the stop this would never terminate *)
  Sim.run sim;
  Alcotest.(check int) "stopped after 3 ticks" 3 !ticks;
  (* stop is idempotent *)
  Sim.stop sim task

let test_every_validation () =
  let sim = Sim.create () in
  Alcotest.check_raises "zero interval" (Invalid_argument "Sim.every: interval must be positive")
    (fun () -> ignore (Sim.every sim ~interval:0. (fun _ -> false)))

let test_every_as_gauge () =
  (* the intended use: periodically sample network state into a series *)
  let sim = Sim.create () in
  let series = Rfd_engine.Timeseries.create () in
  let counter = ref 0 in
  ignore (Sim.schedule_at sim ~time:12. (fun _ -> counter := 5));
  let _ =
    Sim.every sim ~interval:10. (fun sim ->
        Rfd_engine.Timeseries.add series ~time:(Sim.now sim) (float_of_int !counter);
        Sim.now sim < 25.)
  in
  Sim.run sim;
  Alcotest.(check (option (float 0.))) "gauge before change" (Some 0.)
    (Rfd_engine.Timeseries.value_at series 10.);
  Alcotest.(check (option (float 0.))) "gauge after change" (Some 5.)
    (Rfd_engine.Timeseries.value_at series 20.)

let suite =
  [
    Alcotest.test_case "plot data file" `Quick test_data_file;
    Alcotest.test_case "plot script" `Quick test_script;
    Alcotest.test_case "plot write" `Quick test_write;
    Alcotest.test_case "every: basic" `Quick test_every_basic;
    Alcotest.test_case "every: explicit start" `Quick test_every_with_start;
    Alcotest.test_case "every: stop" `Quick test_every_stop;
    Alcotest.test_case "every: validation" `Quick test_every_validation;
    Alcotest.test_case "every: as a gauge" `Quick test_every_as_gauge;
  ]
