(* Tests for the discrete-event simulator core. *)

module Sim = Rfd_engine.Sim

let test_initial_state () =
  let sim = Sim.create () in
  Alcotest.(check (float 0.)) "clock at 0" 0. (Sim.now sim);
  Alcotest.(check int) "no pending" 0 (Sim.pending sim);
  Alcotest.(check (option (float 0.))) "no next" None (Sim.next_time sim);
  Alcotest.(check bool) "step on empty" false (Sim.step sim)

let test_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  let mark tag = fun _ -> log := tag :: !log in
  ignore (Sim.schedule_at sim ~time:3.0 (mark "c"));
  ignore (Sim.schedule_at sim ~time:1.0 (mark "a"));
  ignore (Sim.schedule_at sim ~time:2.0 (mark "b"));
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at last event" 3.0 (Sim.now sim)

let test_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule_at sim ~time:1.0 (fun _ -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_relative_delay () =
  let sim = Sim.create () in
  let seen = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun sim ->
         seen := Sim.now sim :: !seen;
         ignore (Sim.schedule sim ~delay:2.0 (fun sim -> seen := Sim.now sim :: !seen))));
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "nested delays" [ 1.0; 3.0 ] (List.rev !seen)

let test_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:5.0 (fun _ -> ()));
  Sim.run sim;
  Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time in the past")
    (fun () -> ignore (Sim.schedule_at sim ~time:1.0 (fun _ -> ())));
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> ignore (Sim.schedule sim ~delay:(-1.) (fun _ -> ())))

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.schedule_at sim ~time:1.0 (fun _ -> fired := true) in
  Alcotest.(check bool) "pending" true (Sim.is_pending sim ev);
  Sim.cancel sim ev;
  Alcotest.(check bool) "not pending" false (Sim.is_pending sim ev);
  Alcotest.(check int) "live count" 0 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check bool) "never fired" false !fired;
  (* double cancel is a no-op *)
  Sim.cancel sim ev;
  Alcotest.(check int) "still zero" 0 (Sim.pending sim)

let test_cancel_one_of_many () =
  let sim = Sim.create () in
  let log = ref [] in
  let _a = Sim.schedule_at sim ~time:1.0 (fun _ -> log := "a" :: !log) in
  let b = Sim.schedule_at sim ~time:2.0 (fun _ -> log := "b" :: !log) in
  let _c = Sim.schedule_at sim ~time:3.0 (fun _ -> log := "c" :: !log) in
  Sim.cancel sim b;
  Sim.run sim;
  Alcotest.(check (list string)) "b skipped" [ "a"; "c" ] (List.rev !log)

let test_run_until () =
  let sim = Sim.create () in
  let log = ref [] in
  List.iter
    (fun time -> ignore (Sim.schedule_at sim ~time (fun _ -> log := time :: !log)))
    [ 1.0; 2.0; 3.0; 10.0 ];
  Sim.run ~until:5.0 sim;
  Alcotest.(check (list (float 0.))) "events up to horizon" [ 1.0; 2.0; 3.0 ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock advanced to horizon" 5.0 (Sim.now sim);
  Alcotest.(check int) "one pending left" 1 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check (float 0.)) "resumes past horizon" 10.0 (Sim.now sim)

let test_schedule_from_action () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick sim =
    incr count;
    if !count < 10 then ignore (Sim.schedule sim ~delay:1.0 tick)
  in
  ignore (Sim.schedule sim ~delay:1.0 tick);
  Sim.run sim;
  Alcotest.(check int) "chain of 10" 10 !count;
  Alcotest.(check (float 0.)) "clock" 10.0 (Sim.now sim);
  Alcotest.(check int) "executed" 10 (Sim.events_executed sim)

let test_same_time_as_now () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun sim ->
         (* scheduling at the current instant is allowed and runs after *)
         ignore (Sim.schedule sim ~delay:0. (fun _ -> fired := true))));
  Sim.run sim;
  Alcotest.(check bool) "zero-delay event ran" true !fired

let test_nan_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Sim.schedule_at: NaN time") (fun () ->
      ignore (Sim.schedule_at sim ~time:Float.nan (fun _ -> ())))

let test_compaction_reclaims_dead () =
  let sim = Sim.create () in
  let ids =
    List.init 200 (fun i ->
        Sim.schedule_at sim ~time:(float_of_int (i + 1)) (fun _ -> ()))
  in
  Alcotest.(check int) "full heap" 200 (Sim.heap_size sim);
  (* cancel 150 of 200: crosses the more-than-half threshold mid-stream *)
  List.iteri (fun i ev -> if i >= 50 then Sim.cancel sim ev) ids;
  Alcotest.(check bool) "compacted at least once" true (Sim.compactions sim >= 1);
  Alcotest.(check bool) "dead majority never persists" true
    (2 * Sim.dead_count sim <= Sim.heap_size sim);
  Alcotest.(check int) "heap holds the 50 live events plus leftovers" 50
    (Sim.heap_size sim - Sim.dead_count sim);
  Alcotest.(check bool) "heap shrank well below the naive 200" true (Sim.heap_size sim <= 100);
  Alcotest.(check int) "peak residency remembered" 200 (Sim.max_heap_size sim);
  Sim.run sim;
  Alcotest.(check int) "all live events executed" 50 (Sim.events_executed sim)

let test_no_compaction_below_size_floor () =
  (* Small heaps are not worth compacting: dead events just pop lazily. *)
  let sim = Sim.create () in
  let ids =
    List.init 20 (fun i -> Sim.schedule_at sim ~time:(float_of_int (i + 1)) (fun _ -> ()))
  in
  List.iteri (fun i ev -> if i >= 5 then Sim.cancel sim ev) ids;
  Alcotest.(check int) "no compaction under 64 slots" 0 (Sim.compactions sim);
  Alcotest.(check int) "dead events still resident" 15 (Sim.dead_count sim);
  Sim.run sim;
  Alcotest.(check int) "live events executed" 5 (Sim.events_executed sim)

let prop_compaction_preserves_pop_order =
  (* Arbitrary schedule + cancellation patterns (heavy enough to trigger
     compaction repeatedly) must pop surviving events in exactly the
     (time, scheduling-order) sequence of a naive model. Integer times make
     ties common, exercising the FIFO tie-break across compactions. *)
  QCheck.Test.make ~name:"compaction preserves (time, order) pop sequence" ~count:100
    QCheck.(list_of_size Gen.(64 -- 200) (pair (int_bound 30) bool))
    (fun entries ->
      let sim = Sim.create () in
      let seen = ref [] in
      let ids =
        List.mapi
          (fun i (time, _) ->
            Sim.schedule_at sim ~time:(float_of_int time) (fun _ -> seen := i :: !seen))
          entries
      in
      List.iteri
        (fun i (_, cancel) -> if cancel then Sim.cancel sim (List.nth ids i))
        entries;
      Sim.run sim;
      let expected =
        List.mapi (fun i (time, cancel) -> (time, i, cancel)) entries
        |> List.filter (fun (_, _, cancel) -> not cancel)
        |> List.stable_sort (fun (t1, _, _) (t2, _, _) -> compare t1 t2)
        |> List.map (fun (_, i, _) -> i)
      in
      List.rev !seen = expected)

let test_compaction_all_dead_releases_slots () =
  (* Regression: compacting a heap whose events are ALL dead used to skip
     the slot-release pass (it was guarded by kept > 0), leaving the array
     aliasing every cancelled event — and its action closure — until the
     next grow. The storage must be dropped so the closures can be
     collected. *)
  let sim = Sim.create () in
  let payload = ref (Some (Bytes.create 1024)) in
  let weak = Weak.create 1 in
  Weak.set weak 0 !payload;
  (* Build an all-dead heap: 63 cancellations accumulate below the 64-slot
     compaction floor, then one more schedule + cancel crosses it with
     every slot dead. *)
  let ids =
    List.init 63 (fun i ->
        Sim.schedule_at sim ~time:(float_of_int (i + 1)) (fun _ -> ignore !payload))
  in
  payload := None;
  List.iter (fun ev -> Sim.cancel sim ev) ids;
  Alcotest.(check int) "dead pile below the floor" 0 (Sim.compactions sim);
  let last = Sim.schedule_at sim ~time:100. (fun _ -> ()) in
  Sim.cancel sim last;
  Alcotest.(check bool) "compacted" true (Sim.compactions sim >= 1);
  Alcotest.(check int) "no resident events" 0 (Sim.heap_size sim);
  Alcotest.(check int) "no dead leftovers" 0 (Sim.dead_count sim);
  Gc.full_major ();
  Alcotest.(check bool) "cancelled actions are collectable" false (Weak.check weak 0);
  (* The emptied heap must still grow back and run correctly. *)
  let fired = ref 0 in
  ignore (Sim.schedule_at sim ~time:500. (fun _ -> incr fired));
  Sim.run sim;
  Alcotest.(check int) "fresh event ran after all-dead compaction" 1 !fired

let test_run_before_horizon_exclusive () =
  let sim = Sim.create () in
  let seen = ref [] in
  List.iter
    (fun time -> ignore (Sim.schedule_at sim ~time (fun _ -> seen := time :: !seen)))
    [ 1.; 2.; 3.; 4. ];
  Sim.run_before ~horizon:3. sim;
  Alcotest.(check (list (float 0.))) "events strictly below horizon ran" [ 1.; 2. ]
    (List.rev !seen);
  Alcotest.(check int) "later events untouched" 2 (Sim.pending sim);
  Sim.run_before ~until:3. ~horizon:10. sim;
  Alcotest.(check (list (float 0.))) "until is inclusive" [ 1.; 2.; 3. ] (List.rev !seen);
  Alcotest.check_raises "NaN horizon rejected"
    (Invalid_argument "Sim.run_before: NaN horizon") (fun () ->
      Sim.run_before ~horizon:Float.nan sim)

let test_advance_clock () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:5. (fun _ -> ()));
  Sim.run sim;
  Alcotest.(check (float 0.)) "clock at last event" 5. (Sim.now sim);
  Sim.advance_clock sim ~time:3.;
  Alcotest.(check (float 0.)) "never moves backward" 5. (Sim.now sim);
  Sim.advance_clock sim ~time:8.;
  Alcotest.(check (float 0.)) "jumps forward" 8. (Sim.now sim);
  ignore (Sim.schedule_at sim ~time:9. (fun _ -> ()));
  Alcotest.check_raises "cannot jump past a pending event"
    (Invalid_argument "Sim.advance_clock: pending event at 9 earlier than target 12")
    (fun () -> Sim.advance_clock sim ~time:12.);
  Sim.run sim

let test_every_start_in_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:5.0 (fun _ -> ()));
  Sim.run sim;
  Alcotest.check_raises "past start named in message"
    (Invalid_argument "Sim.every: start 1 is in the past (now 5, interval 10)") (fun () ->
      ignore (Sim.every sim ~interval:10. ~start:1. (fun _ -> true)))

let test_every_stop_after_final_occurrence () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rep =
    Sim.every sim ~interval:1. (fun _ ->
        incr count;
        !count < 3)
  in
  Sim.run sim;
  Alcotest.(check int) "ran until told to stop" 3 !count;
  (* the task already ended itself: stopping is a harmless no-op *)
  Sim.stop sim rep;
  Sim.stop sim rep;
  Alcotest.(check int) "nothing pending" 0 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check int) "no further occurrences" 3 !count

let prop_events_run_in_order =
  QCheck.Test.make ~name:"arbitrary schedules run in time order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) (float_range 0. 1000.))
    (fun times ->
      let sim = Sim.create () in
      let seen = ref [] in
      List.iter
        (fun time -> ignore (Sim.schedule_at sim ~time (fun sim -> seen := Sim.now sim :: !seen)))
        times;
      Sim.run sim;
      let ordered = List.rev !seen in
      ordered = List.sort Float.compare times)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "time ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO tie-break" `Quick test_fifo_ties;
    Alcotest.test_case "relative delays nest" `Quick test_relative_delay;
    Alcotest.test_case "past times rejected" `Quick test_past_rejected;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "cancel one of many" `Quick test_cancel_one_of_many;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "actions schedule more events" `Quick test_schedule_from_action;
    Alcotest.test_case "zero-delay from action" `Quick test_same_time_as_now;
    Alcotest.test_case "NaN rejected" `Quick test_nan_rejected;
    Alcotest.test_case "compaction reclaims dead slots" `Quick test_compaction_reclaims_dead;
    Alcotest.test_case "no compaction below size floor" `Quick
      test_no_compaction_below_size_floor;
    Alcotest.test_case "all-dead compaction releases storage" `Quick
      test_compaction_all_dead_releases_slots;
    Alcotest.test_case "run_before: exclusive horizon" `Quick test_run_before_horizon_exclusive;
    Alcotest.test_case "advance_clock" `Quick test_advance_clock;
    Alcotest.test_case "every: past start rejected" `Quick test_every_start_in_past_rejected;
    Alcotest.test_case "every: stop after final occurrence" `Quick
      test_every_stop_after_final_occurrence;
    QCheck_alcotest.to_alcotest prop_events_run_in_order;
    QCheck_alcotest.to_alcotest prop_compaction_preserves_pop_order;
  ]
