(* Tests for the discrete-event simulator core. *)

module Sim = Rfd_engine.Sim

let test_initial_state () =
  let sim = Sim.create () in
  Alcotest.(check (float 0.)) "clock at 0" 0. (Sim.now sim);
  Alcotest.(check int) "no pending" 0 (Sim.pending sim);
  Alcotest.(check (option (float 0.))) "no next" None (Sim.next_time sim);
  Alcotest.(check bool) "step on empty" false (Sim.step sim)

let test_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  let mark tag = fun _ -> log := tag :: !log in
  ignore (Sim.schedule_at sim ~time:3.0 (mark "c"));
  ignore (Sim.schedule_at sim ~time:1.0 (mark "a"));
  ignore (Sim.schedule_at sim ~time:2.0 (mark "b"));
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at last event" 3.0 (Sim.now sim)

let test_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule_at sim ~time:1.0 (fun _ -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_relative_delay () =
  let sim = Sim.create () in
  let seen = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun sim ->
         seen := Sim.now sim :: !seen;
         ignore (Sim.schedule sim ~delay:2.0 (fun sim -> seen := Sim.now sim :: !seen))));
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "nested delays" [ 1.0; 3.0 ] (List.rev !seen)

let test_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:5.0 (fun _ -> ()));
  Sim.run sim;
  Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time in the past")
    (fun () -> ignore (Sim.schedule_at sim ~time:1.0 (fun _ -> ())));
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> ignore (Sim.schedule sim ~delay:(-1.) (fun _ -> ())))

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.schedule_at sim ~time:1.0 (fun _ -> fired := true) in
  Alcotest.(check bool) "pending" true (Sim.is_pending sim ev);
  Sim.cancel sim ev;
  Alcotest.(check bool) "not pending" false (Sim.is_pending sim ev);
  Alcotest.(check int) "live count" 0 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check bool) "never fired" false !fired;
  (* double cancel is a no-op *)
  Sim.cancel sim ev;
  Alcotest.(check int) "still zero" 0 (Sim.pending sim)

let test_cancel_one_of_many () =
  let sim = Sim.create () in
  let log = ref [] in
  let _a = Sim.schedule_at sim ~time:1.0 (fun _ -> log := "a" :: !log) in
  let b = Sim.schedule_at sim ~time:2.0 (fun _ -> log := "b" :: !log) in
  let _c = Sim.schedule_at sim ~time:3.0 (fun _ -> log := "c" :: !log) in
  Sim.cancel sim b;
  Sim.run sim;
  Alcotest.(check (list string)) "b skipped" [ "a"; "c" ] (List.rev !log)

let test_run_until () =
  let sim = Sim.create () in
  let log = ref [] in
  List.iter
    (fun time -> ignore (Sim.schedule_at sim ~time (fun _ -> log := time :: !log)))
    [ 1.0; 2.0; 3.0; 10.0 ];
  Sim.run ~until:5.0 sim;
  Alcotest.(check (list (float 0.))) "events up to horizon" [ 1.0; 2.0; 3.0 ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock advanced to horizon" 5.0 (Sim.now sim);
  Alcotest.(check int) "one pending left" 1 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check (float 0.)) "resumes past horizon" 10.0 (Sim.now sim)

let test_schedule_from_action () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick sim =
    incr count;
    if !count < 10 then ignore (Sim.schedule sim ~delay:1.0 tick)
  in
  ignore (Sim.schedule sim ~delay:1.0 tick);
  Sim.run sim;
  Alcotest.(check int) "chain of 10" 10 !count;
  Alcotest.(check (float 0.)) "clock" 10.0 (Sim.now sim);
  Alcotest.(check int) "executed" 10 (Sim.events_executed sim)

let test_same_time_as_now () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun sim ->
         (* scheduling at the current instant is allowed and runs after *)
         ignore (Sim.schedule sim ~delay:0. (fun _ -> fired := true))));
  Sim.run sim;
  Alcotest.(check bool) "zero-delay event ran" true !fired

let test_nan_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Sim.schedule_at: NaN time") (fun () ->
      ignore (Sim.schedule_at sim ~time:Float.nan (fun _ -> ())))

let prop_events_run_in_order =
  QCheck.Test.make ~name:"arbitrary schedules run in time order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) (float_range 0. 1000.))
    (fun times ->
      let sim = Sim.create () in
      let seen = ref [] in
      List.iter
        (fun time -> ignore (Sim.schedule_at sim ~time (fun sim -> seen := Sim.now sim :: !seen)))
        times;
      Sim.run sim;
      let ordered = List.rev !seen in
      ordered = List.sort Float.compare times)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "time ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO tie-break" `Quick test_fifo_ties;
    Alcotest.test_case "relative delays nest" `Quick test_relative_delay;
    Alcotest.test_case "past times rejected" `Quick test_past_rejected;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "cancel one of many" `Quick test_cancel_one_of_many;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "actions schedule more events" `Quick test_schedule_from_action;
    Alcotest.test_case "zero-delay from action" `Quick test_same_time_as_now;
    Alcotest.test_case "NaN rejected" `Quick test_nan_rejected;
    QCheck_alcotest.to_alcotest prop_events_run_in_order;
  ]
