(* Multi-origin workloads through the runner: a [Replay] of the trace a
   [Flappers] workload expands to is the same simulation, heavy-traffic
   results stay bit-identical across worker and partition counts, and
   invalid workloads are rejected eagerly. *)

module Scenario = Rfd_experiment.Scenario
module Runner = Rfd_experiment.Runner
module Sweep = Rfd_experiment.Sweep
module Trace = Rfd_experiment.Trace
open Rfd_bgp

let small_mesh = Scenario.Mesh { rows = 3; cols = 3 }

let fast_config ?(seed = 42) () =
  let base =
    { Config.default with Config.mrai = 1.; link_delay = 0.01; link_jitter = 0.01; seed }
  in
  Config.with_damping Rfd_damping.Params.cisco base

let background = 5
let flapper_params = (8, 2, 5., 1.5, 3) (* count, flaps, mean_gap, alpha, seed *)

let flappers_workload =
  let count, flaps, mean_gap, alpha, seed = flapper_params in
  Scenario.Flappers { count; flaps; mean_gap; alpha; seed }

let flappers_trace () =
  (* Exactly what the runner expands [flappers_workload] to on a 3x3 mesh:
     9 candidate home nodes, flapper prefixes right above the background. *)
  let count, flaps, mean_gap, alpha, seed = flapper_params in
  Trace.flappers ~seed ~nodes:9 ~count ~flaps ~mean_gap ~alpha
    ~first_prefix:(background + 1)

let scenario_with workload =
  Scenario.make ~name:"workload" ~config:(fast_config ())
    ~background_prefixes:background ~workload small_mesh

(* Scenario records differ between a [Replay] and the [Flappers] it expands
   from, and the scenario is part of the digest — so equivalence is asserted
   on results re-keyed to one common scenario. *)
let digest_normalized r =
  Runner.result_digest { r with Runner.scenario = scenario_with Scenario.Pulses_only }

let test_replay_equals_flappers () =
  let symbolic = Runner.run (scenario_with flappers_workload) in
  let replayed = Runner.run (scenario_with (Scenario.Replay (flappers_trace ()))) in
  Alcotest.(check bool)
    "raw digests differ (scenario is keyed)" true
    (Runner.result_digest symbolic <> Runner.result_digest replayed);
  Alcotest.(check string) "identical simulation modulo scenario"
    (digest_normalized symbolic) (digest_normalized replayed)

let test_workload_jobs_invariant () =
  let pulses = [ 1; 2; 3 ] in
  let fingerprint jobs =
    let sweep = Sweep.run ~pulses ~jobs (scenario_with flappers_workload) in
    Alcotest.(check int)
      (Printf.sprintf "jobs=%d: all points clean" jobs)
      (List.length pulses)
      (List.length sweep.Sweep.points);
    List.map
      (fun p -> (p.Sweep.pulses, Runner.result_digest p.Sweep.result))
      sweep.Sweep.points
  in
  Alcotest.(check (list (pair int string)))
    "heavy-traffic sweep is jobs-invariant" (fingerprint 1) (fingerprint 4)

let test_workload_partitions_invariant () =
  List.iter
    (fun (label, workload) ->
      let scenario = scenario_with workload in
      let digest_at partitions =
        let result, _ = Runner.run_partitioned ~partitions scenario in
        Runner.result_digest result
      in
      let d1 = digest_at 1 in
      Alcotest.(check string)
        (label ^ ": digest partitions=1 vs 2")
        d1 (digest_at 2))
    [
      ("flappers", flappers_workload);
      ("replay", Scenario.Replay (flappers_trace ()));
    ]

let test_make_rejects_bad_workloads () =
  let check_raises name msg workload =
    Alcotest.check_raises name (Invalid_argument ("Scenario.make: " ^ msg)) (fun () ->
        ignore (scenario_with workload))
  in
  check_raises "negative flapper count" "flapper count must be non-negative (got -1)"
    (Scenario.Flappers { count = -1; flaps = 1; mean_gap = 5.; alpha = 1.5; seed = 0 });
  check_raises "zero flaps" "flaps per flapper must be positive (got 0)"
    (Scenario.Flappers { count = 1; flaps = 0; mean_gap = 5.; alpha = 1.5; seed = 0 });
  check_raises "bad mean gap" "flapper mean_gap must be positive and finite (got inf)"
    (Scenario.Flappers
       { count = 1; flaps = 1; mean_gap = infinity; alpha = 1.5; seed = 0 });
  check_raises "bad alpha" "flapper alpha must be positive and finite (got 0)"
    (Scenario.Flappers { count = 1; flaps = 1; mean_gap = 5.; alpha = 0.; seed = 0 });
  check_raises "background collision"
    (Printf.sprintf
       "replay trace prefix %d collides with the background range 1..%d (use prefixes \
        >= %d)"
       background background (background + 1))
    (Scenario.Replay
       [ { Trace.time = 0.; prefix = background; kind = Trace.Withdraw; origin = None } ]);
  check_raises "origin out of range"
    "replay trace origin 9 is out of range for a 9-node topology"
    (Scenario.Replay
       [
         { Trace.time = 0.; prefix = background + 1; kind = Trace.Withdraw; origin = Some 9 };
       ]);
  check_raises "structurally invalid trace"
    "replay event 1: prefix must be >= 1 (got 0; prefix 0 is the measured origin prefix)"
    (Scenario.Replay
       [ { Trace.time = 0.; prefix = 0; kind = Trace.Withdraw; origin = None } ])

let test_validate_checks_hand_built_workloads () =
  (* Records built via [{ s with ... }] bypass [make]; [validate] must
     still reject their workloads. *)
  let bad =
    {
      (scenario_with Scenario.Pulses_only) with
      Scenario.workload =
        Scenario.Flappers { count = 1; flaps = 0; mean_gap = 5.; alpha = 1.5; seed = 0 };
    }
  in
  (match Scenario.validate bad with
  | Error e ->
      Alcotest.(check string) "flaps rejected by validate"
        "flaps per flapper must be positive (got 0)" e
  | Ok () -> Alcotest.fail "validate accepted a zero-flap workload");
  Alcotest.(check (result unit string))
    "valid workload passes validate" (Ok ())
    (Scenario.validate (scenario_with flappers_workload))

let suite =
  [
    Alcotest.test_case "replay of expanded flappers is the same run" `Quick
      test_replay_equals_flappers;
    Alcotest.test_case "heavy-traffic sweep is jobs-invariant" `Quick
      test_workload_jobs_invariant;
    Alcotest.test_case "workloads are partition-count-invariant" `Quick
      test_workload_partitions_invariant;
    Alcotest.test_case "make rejects bad workloads eagerly" `Quick
      test_make_rejects_bad_workloads;
    Alcotest.test_case "validate checks hand-built workloads" `Quick
      test_validate_checks_hand_built_workloads;
  ]
