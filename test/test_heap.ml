(* Unit and property tests for the generic binary heap. *)

module Int_heap = Rfd_engine.Heap.Make (Int)

let drain h =
  let rec loop acc =
    match Int_heap.pop h with None -> List.rev acc | Some x -> loop (x :: acc)
  in
  loop []

let test_empty () =
  let h = Int_heap.create () in
  Alcotest.(check bool) "is_empty" true (Int_heap.is_empty h);
  Alcotest.(check int) "length" 0 (Int_heap.length h);
  Alcotest.(check (option int)) "peek" None (Int_heap.peek h);
  Alcotest.(check (option int)) "pop" None (Int_heap.pop h)

let test_pop_exn_empty () =
  let h = Int_heap.create () in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Int_heap.pop_exn h))

let test_negative_capacity () =
  Alcotest.check_raises "create" (Invalid_argument "Heap.create: negative capacity") (fun () ->
      ignore (Int_heap.create ~capacity:(-1) ()))

let test_singleton () =
  let h = Int_heap.create () in
  Int_heap.push h 42;
  Alcotest.(check (option int)) "peek" (Some 42) (Int_heap.peek h);
  Alcotest.(check int) "length" 1 (Int_heap.length h);
  Alcotest.(check int) "pop_exn" 42 (Int_heap.pop_exn h);
  Alcotest.(check bool) "empty again" true (Int_heap.is_empty h)

let test_ordering () =
  let h = Int_heap.create () in
  List.iter (Int_heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 5; 7; 8; 9 ] (drain h)

let test_duplicates () =
  let h = Int_heap.create () in
  List.iter (Int_heap.push h) [ 4; 4; 1; 4; 1 ];
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 4; 4; 4 ] (drain h)

let test_clear () =
  let h = Int_heap.create () in
  List.iter (Int_heap.push h) [ 1; 2; 3 ];
  Int_heap.clear h;
  Alcotest.(check int) "cleared" 0 (Int_heap.length h);
  Int_heap.push h 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Int_heap.pop h)

let test_to_list_and_fold () =
  let h = Int_heap.create () in
  List.iter (Int_heap.push h) [ 3; 1; 2 ];
  let contents = List.sort Int.compare (Int_heap.to_list h) in
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] contents;
  let sum = Int_heap.fold (fun ~acc x -> acc + x) 0 h in
  Alcotest.(check int) "fold sum" 6 sum;
  Alcotest.(check int) "unchanged" 3 (Int_heap.length h)

let test_interleaved () =
  let h = Int_heap.create () in
  Int_heap.push h 10;
  Int_heap.push h 5;
  Alcotest.(check int) "min first" 5 (Int_heap.pop_exn h);
  Int_heap.push h 1;
  Int_heap.push h 20;
  Alcotest.(check int) "new min" 1 (Int_heap.pop_exn h);
  Alcotest.(check int) "then 10" 10 (Int_heap.pop_exn h);
  Alcotest.(check int) "then 20" 20 (Int_heap.pop_exn h)

let prop_drain_sorted =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Int_heap.create () in
      List.iter (Int_heap.push h) xs;
      drain h = List.sort Int.compare xs)

let prop_peek_is_min =
  QCheck.Test.make ~name:"peek is minimum" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) int)
    (fun xs ->
      let h = Int_heap.create () in
      List.iter (Int_heap.push h) xs;
      Int_heap.peek h = Some (List.fold_left min max_int xs))

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pop_exn on empty raises" `Quick test_pop_exn_empty;
    Alcotest.test_case "negative capacity rejected" `Quick test_negative_capacity;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "pops in order" `Quick test_ordering;
    Alcotest.test_case "duplicates preserved" `Quick test_duplicates;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "to_list and fold" `Quick test_to_list_and_fold;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest prop_drain_sorted;
    QCheck_alcotest.to_alcotest prop_peek_is_min;
  ]
