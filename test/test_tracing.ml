(* Tests for protocol tracing composed with existing hooks. *)

module Tracing = Rfd_experiment.Tracing
module Trace = Rfd_engine.Trace
open Rfd_bgp

let p0 = Prefix.v 0

let fast = { Config.default with Config.mrai = 0.; link_delay = 0.01; link_jitter = 0. }

let topics trace =
  Trace.entries trace |> List.map (fun e -> e.Trace.topic) |> List.sort_uniq String.compare

let test_records_protocol_events () =
  let sim = Rfd_engine.Sim.create () in
  let net = Network.create ~config:fast sim (Rfd_topology.Builders.line 3) in
  let trace = Trace.create () in
  Tracing.attach trace (Network.hooks net);
  Network.originate net ~node:0 p0;
  Network.run net;
  let seen = topics trace in
  Alcotest.(check bool) "sends traced" true (List.mem "send" seen);
  Alcotest.(check bool) "deliveries traced" true (List.mem "deliver" seen);
  Alcotest.(check bool) "best changes traced" true (List.mem "best" seen);
  Alcotest.(check bool) "non-empty transcript" true (Trace.length trace > 0);
  let transcript = Format.asprintf "%a" Tracing.pp_transcript trace in
  Alcotest.(check bool) "renders" true (String.length transcript > 0)

let test_composes_with_collector () =
  (* collector first, tracing second: both must observe every delivery *)
  let sim = Rfd_engine.Sim.create () in
  let net = Network.create ~config:fast sim (Rfd_topology.Builders.line 3) in
  let collector = Rfd_experiment.Collector.create () in
  Rfd_experiment.Collector.attach collector (Network.hooks net);
  let trace = Trace.create () in
  Tracing.attach trace (Network.hooks net);
  Network.originate net ~node:0 p0;
  Network.run net;
  let traced_deliveries =
    Trace.entries trace |> List.filter (fun e -> e.Trace.topic = "deliver") |> List.length
  in
  Alcotest.(check bool) "collector saw messages" true
    (Rfd_experiment.Collector.update_count collector > 0);
  Alcotest.(check int) "trace and collector agree"
    (Rfd_experiment.Collector.update_count collector)
    traced_deliveries

let test_damping_topics () =
  let config = Config.with_damping Rfd_damping.Params.cisco fast in
  let sim = Rfd_engine.Sim.create () in
  let net = Network.create ~config sim (Rfd_topology.Builders.line 3) in
  let trace = Trace.create () in
  Tracing.attach trace (Network.hooks net);
  Network.originate net ~node:0 p0;
  Network.run net;
  let t0 = Rfd_engine.Sim.now sim +. 1. in
  for i = 0 to 3 do
    Network.schedule_withdraw net ~at:(t0 +. (120. *. float_of_int i)) ~node:0 p0;
    Network.schedule_originate net ~at:(t0 +. (120. *. float_of_int i) +. 60.) ~node:0 p0
  done;
  Network.run net;
  let seen = topics trace in
  List.iter
    (fun topic -> Alcotest.(check bool) (topic ^ " traced") true (List.mem topic seen))
    [ "penalty"; "suppress"; "reuse" ]

let test_disabled_trace_costs_nothing () =
  let sim = Rfd_engine.Sim.create () in
  let net = Network.create ~config:fast sim (Rfd_topology.Builders.line 3) in
  let trace = Trace.create ~enabled:false () in
  Tracing.attach trace (Network.hooks net);
  Network.originate net ~node:0 p0;
  Network.run net;
  Alcotest.(check int) "nothing recorded" 0 (Trace.length trace)

let test_runner_observe () =
  (* the Runner's [observe] hook exposes the network for extra observers
     during the measured flap phase *)
  let trace = Trace.create () in
  let observe net = Tracing.attach trace (Network.hooks net) in
  let scenario =
    Rfd_experiment.Scenario.make ~config:fast
      (Rfd_experiment.Scenario.Mesh { rows = 3; cols = 3 })
  in
  let r = Rfd_experiment.Runner.run ~observe scenario in
  let traced_deliveries =
    Trace.entries trace |> List.filter (fun e -> e.Trace.topic = "deliver") |> List.length
  in
  Alcotest.(check int) "trace covers the flap phase exactly"
    r.Rfd_experiment.Runner.message_count traced_deliveries

let suite =
  [
    Alcotest.test_case "records protocol events" `Quick test_records_protocol_events;
    Alcotest.test_case "composes with collector" `Quick test_composes_with_collector;
    Alcotest.test_case "damping topics" `Quick test_damping_topics;
    Alcotest.test_case "disabled trace" `Quick test_disabled_trace_costs_nothing;
    Alcotest.test_case "runner observe hook" `Quick test_runner_observe;
  ]
