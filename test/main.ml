(* Aggregated test runner: `dune runtest`. *)

let () =
  Alcotest.run "rfd"
    [
      ("engine.heap", Test_heap.suite);
      ("engine.rng", Test_rng.suite);
      ("engine.sim", Test_sim.suite);
      ("engine.timeseries", Test_timeseries.suite);
      ("engine.stats", Test_stats.suite);
      ("engine.trace", Test_trace.suite);
      ("engine.pool", Test_pool.suite);
      ("engine.partition", Test_partition.suite);
      ("engine.procfs", Test_procfs.suite);
      ("engine.supervisor", Test_supervisor.suite);
      ("topology.graph", Test_graph.suite);
      ("topology.builders", Test_builders.suite);
      ("topology.random_graphs", Test_random_graphs.suite);
      ("topology.relations", Test_relations.suite);
      ("topology.edge_list", Test_edge_list.suite);
      ("topology.metrics", Test_metrics.suite);
      ("damping.params", Test_params.suite);
      ("damping.damper", Test_damper.suite);
      ("damping.history", Test_history.suite);
      ("damping.reuse_index", Test_reuse_index.suite);
      ("bgp.types", Test_bgp_types.suite);
      ("bgp.config", Test_config.suite);
      ("bgp.intern", Test_intern.suite);
      ("bgp.policy", Test_policy.suite);
      ("bgp.network", Test_network.suite);
      ("bgp.damping", Test_damping_network.suite);
      ("bgp.edge_cases", Test_router_edge.suite);
      ("bgp.oracle", Test_oracle.suite);
      ("bgp.session_flap", Test_session_flap.suite);
      ("bgp.reuse_mode", Test_reuse_mode.suite);
      ("bgp.transport", Test_transport.suite);
      ("faults.plans", Test_faults.suite);
      ("experiment.intended", Test_intended.suite);
      ("experiment.pulse", Test_pulse.suite);
      ("experiment.update_trace", Test_update_trace.suite);
      ("experiment.workload", Test_workload.suite);
      ("experiment.sweep", Test_sweep_stats.suite);
      ("experiment.sweep_parallel", Test_sweep_parallel.suite);
      ("experiment.sweep_supervised", Test_sweep_supervised.suite);
      ("experiment.journal", Test_journal.suite);
      ("experiment.phases", Test_phases.suite);
      ("experiment.report", Test_report.suite);
      ("experiment.plot", Test_plot.suite);
      ("experiment.json", Test_json.suite);
      ("experiment.runner", Test_runner.suite);
      ("experiment.partitioned", Test_partitioned.suite);
      ("experiment.tracing", Test_tracing.suite);
      ("service.daemon", Test_service.suite);
      ("protocol.properties", Test_properties.suite);
      ("paper.integration", Test_paper.suite);
    ]
