(* Tests for protocol configuration validation and helpers. *)

open Rfd_bgp
module Params = Rfd_damping.Params

let is_err = Result.is_error

let test_default_valid () =
  Alcotest.(check bool) "default" true (Config.validate Config.default = Ok ());
  Alcotest.(check bool) "no damping by default" true (Config.default.Config.damping = None);
  Alcotest.(check (float 0.)) "30s mrai" 30. Config.default.Config.mrai

let test_with_damping () =
  let c = Config.with_damping Params.cisco Config.default in
  Alcotest.(check bool) "params installed" true (c.Config.damping = Some Params.cisco);
  Alcotest.(check bool) "plain by default" true (c.Config.damping_mode = Config.Plain);
  let c2 = Config.with_damping ~mode:Config.Rcn ~deployment:(Config.Fraction 0.5) Params.juniper Config.default in
  Alcotest.(check bool) "mode set" true (c2.Config.damping_mode = Config.Rcn);
  Alcotest.(check bool) "deployment set" true (c2.Config.deployment = Config.Fraction 0.5);
  Alcotest.(check bool) "valid" true (Config.validate c2 = Ok ())

let test_rejects_bad_fields () =
  let base = Config.default in
  Alcotest.(check bool) "negative mrai" true
    (is_err (Config.validate { base with Config.mrai = -1. }));
  Alcotest.(check bool) "bad jitter" true
    (is_err (Config.validate { base with Config.mrai_jitter = (0., 1.) }));
  Alcotest.(check bool) "inverted jitter" true
    (is_err (Config.validate { base with Config.mrai_jitter = (1.0, 0.5) }));
  Alcotest.(check bool) "zero link delay" true
    (is_err (Config.validate { base with Config.link_delay = 0. }));
  Alcotest.(check bool) "negative link jitter" true
    (is_err (Config.validate { base with Config.link_jitter = -0.1 }));
  Alcotest.(check bool) "zero rcn history" true
    (is_err (Config.validate { base with Config.rcn_history = 0 }));
  Alcotest.(check bool) "zero table hint" true
    (is_err (Config.validate { base with Config.prefix_table_hint = 0 }));
  Alcotest.(check bool) "negative table hint" true
    (is_err (Config.validate { base with Config.prefix_table_hint = -8 }));
  Alcotest.(check bool) "small table hint valid" true
    (Config.validate { base with Config.prefix_table_hint = 1 } = Ok ())

let test_rejects_bad_damping () =
  let bad_params = { Params.cisco with Params.cutoff = 1. } in
  let c = Config.with_damping bad_params Config.default in
  Alcotest.(check bool) "invalid preset" true (is_err (Config.validate c));
  let c =
    Config.with_damping ~deployment:(Config.Fraction 1.5) Params.cisco Config.default
  in
  Alcotest.(check bool) "fraction out of range" true (is_err (Config.validate c))

let test_rejects_bad_overrides () =
  let c =
    {
      (Config.with_damping Params.cisco Config.default) with
      Config.damping_overrides = [ (-1, Params.juniper) ];
    }
  in
  Alcotest.(check bool) "negative id" true (is_err (Config.validate c));
  let c =
    {
      (Config.with_damping Params.cisco Config.default) with
      Config.damping_overrides = [ (3, { Params.cisco with Params.half_life = -1. }) ];
    }
  in
  Alcotest.(check bool) "invalid override params" true (is_err (Config.validate c));
  let c =
    {
      (Config.with_damping Params.cisco Config.default) with
      Config.damping_overrides = [ (3, Params.juniper) ];
    }
  in
  Alcotest.(check bool) "valid override accepted" true (Config.validate c = Ok ())

let test_network_rejects_invalid_config () =
  let sim = Rfd_engine.Sim.create () in
  let bad = { Config.default with Config.link_delay = 0. } in
  Alcotest.check_raises "surfaced" (Invalid_argument "Network.create: link_delay must be positive")
    (fun () -> ignore (Network.create ~config:bad sim (Rfd_topology.Builders.line 2)))

let test_deployment_only_out_of_range () =
  let sim = Rfd_engine.Sim.create () in
  let config =
    Config.with_damping ~deployment:(Config.Only [ 9 ]) Params.cisco
      { Config.default with Config.link_jitter = 0. }
  in
  Alcotest.check_raises "out of range node"
    (Invalid_argument "Network: deployment node 9 out of range") (fun () ->
      ignore (Network.create ~config sim (Rfd_topology.Builders.line 2)))

let suite =
  [
    Alcotest.test_case "default valid" `Quick test_default_valid;
    Alcotest.test_case "with_damping" `Quick test_with_damping;
    Alcotest.test_case "bad fields rejected" `Quick test_rejects_bad_fields;
    Alcotest.test_case "bad damping rejected" `Quick test_rejects_bad_damping;
    Alcotest.test_case "bad overrides rejected" `Quick test_rejects_bad_overrides;
    Alcotest.test_case "network surfaces config errors" `Quick
      test_network_rejects_invalid_config;
    Alcotest.test_case "deployment node range" `Quick test_deployment_only_out_of_range;
  ]
