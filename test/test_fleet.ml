(* Tests for the sharded fleet client: owner routing with shard
   admission on, wrong-shard refusal of misrouted direct clients,
   byte-identical failover past a dead owner, and the per-shard circuit
   breaker — driven by an injected fake clock, with open intervals
   pinned to the supervisor's deterministic backoff. *)

module Protocol = Rfd_service.Protocol
module Server = Rfd_service.Server
module Client = Rfd_service.Client
module Fleet = Rfd_service.Fleet
module Shard = Rfd_service.Shard
module Supervisor = Rfd_engine.Supervisor

let tmp_path suffix = Filename.temp_file "rfd-fleet" suffix

let small_spec ?(seed = 42) () =
  {
    Protocol.default_spec with
    Protocol.topology = Protocol.Mesh { rows = 3; cols = 3 };
    seed;
    pulses = 1;
  }

(* An n-shard fleet of real daemons. [accept_any] selects the
   deployment: false = strict admission, true = failover-capable. *)
let with_daemons ?(accept_any = false) n f =
  let sockets = List.init n (fun _ -> tmp_path ".sock") in
  let journals =
    List.init n (fun _ ->
        let p = tmp_path ".journal" in
        Sys.remove p;
        p)
  in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      (sockets @ journals)
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let servers =
    List.mapi
      (fun i socket ->
        let cfg =
          {
            (Server.default_config ~socket_path:socket
               ~journal_path:(List.nth journals i))
            with
            Server.jobs = Some 1;
            deadline = Some 60.;
            retries = 0;
            io_timeout = 5.;
            shard_id = i;
            shard_count = n;
            accept_any;
          }
        in
        let t = Server.create cfg in
        let stopped = ref false in
        let d = Domain.spawn (fun () -> Server.serve t) in
        let stop () =
          if not !stopped then begin
            stopped := true;
            Server.request_stop t;
            ignore (Domain.join d : Server.stop)
          end
        in
        stop)
      sockets
  in
  let stop i = List.nth servers i () in
  Fun.protect
    ~finally:(fun () -> List.iteri (fun i _ -> stop i) servers)
    (fun () -> f ~sockets ~stop)

let query_ok fleet spec =
  match Fleet.query ~attempts:1 fleet spec with
  | Ok (Protocol.Result { cached; body }) -> (cached, body)
  | Ok (Protocol.Refused { body; _ }) ->
      Alcotest.fail (Printf.sprintf "refused: %s" body)
  | Ok _ -> Alcotest.fail "unexpected response"
  | Error e -> Alcotest.fail e

(* Find seeds whose keys land on given shards of a 2-fleet, so tests
   can pick keys with known owners without depending on digest bits. *)
let seed_owned_by fleet ~owner ~from =
  let rec go seed =
    if seed > from + 1000 then Alcotest.fail "no seed found for shard"
    else
      match Fleet.key_of_spec fleet (small_spec ~seed ()) with
      | Ok key when Fleet.owner fleet key = owner -> seed
      | _ -> go (seed + 1)
  in
  go from

let test_routing_with_admission () =
  (* Strict admission (no accept-any): every fleet query must land on
     its owner or the daemons would refuse it — zero tolerance here. *)
  with_daemons 2 @@ fun ~sockets ~stop:_ ->
  let fleet = Fleet.create ~timeout:60. ~connect_retry:5. sockets in
  Fun.protect ~finally:(fun () -> Fleet.close fleet) @@ fun () ->
  let s0 = seed_owned_by fleet ~owner:0 ~from:500 in
  let s1 = seed_owned_by fleet ~owner:1 ~from:600 in
  let specs =
    small_spec ~seed:s0 () :: small_spec ~seed:s1 ()
    :: List.init 6 (fun i -> small_spec ~seed:(100 + i) ())
  in
  let bodies = List.map (fun spec -> snd (query_ok fleet spec)) specs in
  (* Again: all hits now, byte-identical. *)
  List.iter2
    (fun spec body ->
      let cached, body' = query_ok fleet spec in
      Alcotest.(check bool) "second round is a cache hit" true cached;
      Alcotest.(check string) "hit byte-identical to miss" body body')
    specs bodies;
  (* Both shards actually served work (keys spread), and neither ever
     saw a wrong-shard query from the fleet router. *)
  List.iter
    (fun (socket, stats) ->
      match stats with
      | Ok body ->
          let has pat =
            let plen = String.length pat in
            let rec find i =
              i + plen <= String.length body
              && (String.sub body i plen = pat || find (i + 1))
            in
            find 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s refused nothing as wrong-shard" socket)
            true
            (has "\"wrong_shard\":0");
          Alcotest.(check bool)
            (Printf.sprintf "%s served at least one miss" socket)
            false
            (has "\"misses\":0")
      | Error e -> Alcotest.fail e)
    (Fleet.stats fleet)

let test_wrong_shard_refusal () =
  with_daemons 2 @@ fun ~sockets ~stop:_ ->
  let fleet = Fleet.create ~timeout:60. ~connect_retry:5. sockets in
  Fun.protect ~finally:(fun () -> Fleet.close fleet) @@ fun () ->
  let seed = seed_owned_by fleet ~owner:1 ~from:200 in
  let spec = small_spec ~seed () in
  (* A direct client asking shard 0 for shard 1's key is refused with
     the explicit wrong-shard code... *)
  let direct = Client.connect ~timeout:10. ~retry_for:5. (List.nth sockets 0) in
  (match Client.query ~attempts:1 direct spec with
  | Ok (Protocol.Refused { code = Protocol.Wrong_shard; body }) ->
      Alcotest.(check bool) "refusal body names the owner" true
        (String.length body > 0)
  | Ok _ -> Alcotest.fail "shard 0 served a key it does not own"
  | Error e -> Alcotest.fail e);
  Client.close direct;
  (* ...while the fleet, routing by owner, serves it. *)
  ignore (query_ok fleet spec)

let test_failover_byte_identity () =
  (* accept-any deployment: kill the owner, the fleet must fail over
     and the served body must be byte-identical to the reference the
     owner itself produced. *)
  with_daemons ~accept_any:true 2 @@ fun ~sockets ~stop ->
  let fleet = Fleet.create ~timeout:60. ~connect_retry:5. sockets in
  Fun.protect ~finally:(fun () -> Fleet.close fleet) @@ fun () ->
  let seed = seed_owned_by fleet ~owner:0 ~from:300 in
  let spec = small_spec ~seed () in
  let _, reference = query_ok fleet spec in
  stop 0;
  (* The poisoned cached connection fails, the breaker notes it, and
     the query lands on shard 1 — which recomputes the same answer. *)
  let _, body = query_ok fleet spec in
  Alcotest.(check string) "failover body byte-identical" reference body;
  (match Fleet.info fleet with
  | { Fleet.shard_breaker = Fleet.Open; _ } :: _ -> ()
  | { Fleet.shard_breaker = Fleet.Half_open; _ } :: _ -> ()
  | _ -> Alcotest.fail "dead owner's breaker did not trip");
  (* And with the owner dead the answer keeps coming (from shard 1). *)
  let _, body2 = query_ok fleet spec in
  Alcotest.(check string) "repeat failover byte-identical" reference body2

let test_breaker_state_machine () =
  (* No daemons at all: drive the breaker with a fake clock against
     dead socket paths. *)
  let dead = [ "/tmp/rfd-fleet-dead-0.sock"; "/tmp/rfd-fleet-dead-1.sock" ] in
  let now = ref 1000. in
  let base = 0.25 in
  let fleet =
    Fleet.create ~timeout:1. ~connect_retry:0. ~breaker_threshold:1
      ~backoff_base:base
      ~now:(fun () -> !now)
      dead
  in
  Fun.protect ~finally:(fun () -> Fleet.close fleet) @@ fun () ->
  Alcotest.(check bool) "starts closed" true
    (Fleet.breaker_state fleet 0 = Fleet.Closed);
  (* First failure trips the breaker (threshold 1). *)
  Alcotest.(check bool) "dead shard does not pong" false (Fleet.ping_shard fleet 0);
  Alcotest.(check bool) "breaker open after first failure" true
    (Fleet.breaker_state fleet 0 = Fleet.Open);
  (* The open interval is the supervisor's deterministic backoff for
     (socket, trip 1) — attempt 2 in supervisor terms. *)
  let d1 = Supervisor.backoff_delay ~key:(List.nth dead 0) ~attempt:2 ~base in
  Alcotest.(check bool) "first open interval is positive" true (d1 > 0.);
  now := 1000. +. (d1 /. 2.);
  Alcotest.(check bool) "still open before the deadline" true
    (Fleet.breaker_state fleet 0 = Fleet.Open);
  now := 1000. +. d1 +. 0.001;
  Alcotest.(check bool) "half-open once the deadline passes" true
    (Fleet.breaker_state fleet 0 = Fleet.Half_open);
  (* A failed half-open probe re-opens immediately with the next,
     longer deterministic interval. *)
  let reopened_at = !now in
  Alcotest.(check bool) "probe fails" false (Fleet.ping_shard fleet 0);
  Alcotest.(check bool) "re-opened" true
    (Fleet.breaker_state fleet 0 = Fleet.Open);
  let d2 = Supervisor.backoff_delay ~key:(List.nth dead 0) ~attempt:3 ~base in
  now := reopened_at +. d2 -. 0.001;
  Alcotest.(check bool) "still open just before the second deadline" true
    (Fleet.breaker_state fleet 0 = Fleet.Open);
  now := reopened_at +. d2 +. 0.001;
  Alcotest.(check bool) "half-open again" true
    (Fleet.breaker_state fleet 0 = Fleet.Half_open);
  (* With every breaker open, a query reports failure, not a hang. *)
  (match Fleet.query ~attempts:1 fleet (small_spec ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dead fleet answered");
  (* Trip counters are visible for operators and tests. *)
  match Fleet.info fleet with
  | info0 :: _ ->
      Alcotest.(check bool) "trips counted" true (info0.Fleet.shard_trips >= 2)
  | [] -> Alcotest.fail "no shard info"

let test_breaker_recovery_closes () =
  (* Open the breaker on a dead socket, then start a real daemon there:
     the half-open probe must succeed and close the breaker. *)
  let socket = tmp_path ".sock" in
  let journal = tmp_path ".journal" in
  Sys.remove journal;
  Sys.remove socket;
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ socket; journal ]
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let now = ref 0. in
  let fleet =
    Fleet.create ~timeout:10. ~connect_retry:0. ~breaker_threshold:1
      ~now:(fun () -> !now)
      [ socket ]
  in
  Fun.protect ~finally:(fun () -> Fleet.close fleet) @@ fun () ->
  Alcotest.(check bool) "dead socket fails" false (Fleet.ping_shard fleet 0);
  Alcotest.(check bool) "breaker opened" true
    (Fleet.breaker_state fleet 0 = Fleet.Open);
  let cfg =
    {
      (Server.default_config ~socket_path:socket ~journal_path:journal) with
      Server.jobs = Some 1;
      deadline = Some 60.;
      retries = 0;
    }
  in
  let t = Server.create cfg in
  let d = Domain.spawn (fun () -> Server.serve t) in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop t;
      ignore (Domain.join d : Server.stop))
    (fun () ->
      now := 10_000.;
      (* past any backoff *)
      Alcotest.(check bool) "probe pongs" true (Fleet.ping_shard fleet 0);
      Alcotest.(check bool) "breaker closed after recovery" true
        (Fleet.breaker_state fleet 0 = Fleet.Closed);
      ignore (query_ok fleet (small_spec ())))

let test_invalid_spec_is_local_and_canonical () =
  (* An invalid spec never costs a roundtrip and matches the daemon's
     own refusal byte-for-byte. *)
  with_daemons 1 @@ fun ~sockets ~stop:_ ->
  let fleet = Fleet.create ~timeout:10. ~connect_retry:5. sockets in
  Fun.protect ~finally:(fun () -> Fleet.close fleet) @@ fun () ->
  let bad = { (small_spec ()) with Protocol.pulses = -1 } in
  let fleet_body =
    match Fleet.query fleet bad with
    | Ok (Protocol.Refused { code = Protocol.Invalid; body }) -> body
    | _ -> Alcotest.fail "invalid spec not refused by fleet"
  in
  let direct = Client.connect ~timeout:10. ~retry_for:5. (List.nth sockets 0) in
  (match Client.query ~attempts:1 direct bad with
  | Ok (Protocol.Refused { code = Protocol.Invalid; body }) ->
      Alcotest.(check string) "fleet refusal matches daemon refusal" body
        fleet_body
  | _ -> Alcotest.fail "invalid spec not refused by daemon");
  Client.close direct

let suite =
  [
    Alcotest.test_case "routing with strict shard admission" `Quick
      test_routing_with_admission;
    Alcotest.test_case "misrouted direct client gets wrong-shard" `Quick
      test_wrong_shard_refusal;
    Alcotest.test_case "failover past a dead owner is byte-identical" `Quick
      test_failover_byte_identity;
    Alcotest.test_case "breaker: deterministic open/half-open timeline" `Quick
      test_breaker_state_machine;
    Alcotest.test_case "breaker: recovery probe closes" `Quick
      test_breaker_recovery_closes;
    Alcotest.test_case "invalid specs refused locally, canonically" `Quick
      test_invalid_spec_is_local_and_canonical;
  ]
