(* Tests for the trace facility. *)

module Trace = Rfd_engine.Trace

let test_record_and_entries () =
  let t = Trace.create () in
  Trace.record t ~time:1. ~topic:"bgp" "hello";
  Trace.record t ~time:2. ~topic:"damp" "world";
  let entries = Trace.entries t in
  Alcotest.(check int) "count" 2 (Trace.length t);
  (match entries with
  | [ a; b ] ->
      Alcotest.(check string) "first topic" "bgp" a.Trace.topic;
      Alcotest.(check string) "second message" "world" b.Trace.message;
      Alcotest.(check (float 0.)) "first time" 1. a.Trace.time
  | _ -> Alcotest.fail "expected two entries")

let test_disabled () =
  let t = Trace.create ~enabled:false () in
  let called = ref false in
  Trace.subscribe t (fun _ -> called := true);
  Trace.record t ~time:1. ~topic:"x" "dropped";
  Alcotest.(check int) "nothing stored" 0 (Trace.length t);
  Alcotest.(check bool) "subscriber not called" false !called;
  Trace.set_enabled t true;
  Trace.record t ~time:2. ~topic:"x" "kept";
  Alcotest.(check int) "stored after enable" 1 (Trace.length t);
  Alcotest.(check bool) "subscriber called" true !called

let test_no_keep () =
  let t = Trace.create ~keep:false () in
  let seen = ref 0 in
  Trace.subscribe t (fun _ -> incr seen);
  Trace.record t ~time:1. ~topic:"x" "a";
  Trace.record t ~time:2. ~topic:"x" "b";
  Alcotest.(check int) "not stored" 0 (List.length (Trace.entries t));
  Alcotest.(check int) "subscribers still fire" 2 !seen

let test_subscriber_order () =
  let t = Trace.create () in
  let log = ref [] in
  Trace.subscribe t (fun _ -> log := "first" :: !log);
  Trace.subscribe t (fun _ -> log := "second" :: !log);
  Trace.record t ~time:0. ~topic:"x" "m";
  Alcotest.(check (list string)) "subscription order" [ "first"; "second" ] (List.rev !log)

let test_recordf () =
  let t = Trace.create () in
  Trace.recordf t ~time:1. ~topic:"fmt" "n=%d s=%s" 42 "ok";
  match Trace.entries t with
  | [ e ] -> Alcotest.(check string) "formatted" "n=42 s=ok" e.Trace.message
  | _ -> Alcotest.fail "expected one entry"

let test_clear () =
  let t = Trace.create () in
  Trace.record t ~time:1. ~topic:"x" "a";
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.length t)

(* Simple substring check to avoid extra dependencies. *)
let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let test_pp () =
  let e = { Trace.time = 1.5; topic = "bgp"; message = "update sent" } in
  let s = Format.asprintf "%a" Trace.pp_entry e in
  Alcotest.(check bool) "mentions topic" true (contains ~needle:"bgp" s);
  Alcotest.(check bool) "mentions message" true (contains ~needle:"update sent" s)

let suite =
  [
    Alcotest.test_case "record and read back" `Quick test_record_and_entries;
    Alcotest.test_case "disabled trace drops" `Quick test_disabled;
    Alcotest.test_case "keep:false streams only" `Quick test_no_keep;
    Alcotest.test_case "subscribers in order" `Quick test_subscriber_order;
    Alcotest.test_case "recordf formatting" `Quick test_recordf;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "pp_entry" `Quick test_pp;
  ]
