(* Procfs peak-RSS parsing: every failure mode must degrade to 0, never
   raise, and the file channel must be closed on all paths. *)

module Procfs = Rfd_engine.Procfs

let feed lines =
  let remaining = ref lines in
  fun () ->
    match !remaining with
    | [] -> None
    | line :: rest ->
        remaining := rest;
        Some line

let test_well_formed () =
  Alcotest.(check int) "plain status file" 123456
    (Procfs.vm_hwm_kb
       (feed [ "Name:\trfd"; "VmPeak:\t  999999 kB"; "VmHWM:\t  123456 kB"; "VmRSS:\t 1 kB" ]))

let test_first_match_wins () =
  Alcotest.(check int) "first VmHWM line wins" 7
    (Procfs.vm_hwm_kb (feed [ "VmHWM:\t7 kB"; "VmHWM:\t8 kB" ]))

let test_missing_field () =
  Alcotest.(check int) "no VmHWM line" 0
    (Procfs.vm_hwm_kb (feed [ "Name:\trfd"; "VmRSS:\t 10 kB" ]));
  Alcotest.(check int) "empty input" 0 (Procfs.vm_hwm_kb (feed []))

let test_malformed_value () =
  (* A VmHWM line whose value does not scan as an integer used to let
     Scanf.Scan_failure escape through the bench harness; it must yield 0. *)
  Alcotest.(check int) "non-numeric value" 0 (Procfs.vm_hwm_kb (feed [ "VmHWM:\tgarbage kB" ]));
  Alcotest.(check int) "empty value" 0 (Procfs.vm_hwm_kb (feed [ "VmHWM:" ]));
  Alcotest.(check int) "whitespace only" 0 (Procfs.vm_hwm_kb (feed [ "VmHWM:   " ]))

let test_reader_exception () =
  (* An I/O error mid-scan (e.g. End_of_file from a truncated read) also
     degrades to 0 instead of escaping. *)
  let blowing_reader () = raise End_of_file in
  Alcotest.(check int) "raising reader" 0 (Procfs.vm_hwm_kb blowing_reader)

let test_peak_rss_missing_file () =
  Alcotest.(check int) "missing file" 0
    (Procfs.peak_rss_kb ~path:"/nonexistent/proc/self/status" ())

let test_peak_rss_real_file () =
  (* Exercise the channel path end to end with stub files on disk. *)
  let write_tmp contents =
    let path = Filename.temp_file "rfd-procfs" ".status" in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    path
  in
  let good = write_tmp "Name:\trfd\nVmHWM:\t  4242 kB\nVmRSS:\t1 kB\n" in
  let bad = write_tmp "Name:\trfd\nVmHWM:\tnot-a-number\n" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove good;
      Sys.remove bad)
    (fun () ->
      Alcotest.(check int) "well-formed stub file" 4242 (Procfs.peak_rss_kb ~path:good ());
      Alcotest.(check int) "malformed stub file" 0 (Procfs.peak_rss_kb ~path:bad ()))

let suite =
  [
    Alcotest.test_case "well-formed status" `Quick test_well_formed;
    Alcotest.test_case "first match wins" `Quick test_first_match_wins;
    Alcotest.test_case "missing field" `Quick test_missing_field;
    Alcotest.test_case "malformed value" `Quick test_malformed_value;
    Alcotest.test_case "raising reader" `Quick test_reader_exception;
    Alcotest.test_case "missing file" `Quick test_peak_rss_missing_file;
    Alcotest.test_case "stub files on disk" `Quick test_peak_rss_real_file;
  ]
